package core

import (
	"fmt"
	"math/bits"
	"sort"
)

// Fairness selects the admissibility condition used by liveness analyses.
// The paper stresses (§2.1, §2.2.4, §3.4) that "the proper treatment of
// admissibility" is one of the hardest parts of these proofs: an infinite
// execution only refutes a liveness property if the processes that are
// supposed to keep moving actually do.
type Fairness int

const (
	// WeakFairness admits an infinite execution only if every actor that
	// is continuously enabled takes infinitely many steps. This is the
	// standard admissibility condition for asynchronous systems: non-failed
	// processes keep taking steps.
	WeakFairness Fairness = iota + 1
	// NoFairness admits every infinite execution. This models full
	// resiliency / wait-freedom (§2.3): the only liveness assumption is
	// that *some* process keeps taking steps.
	NoFairness
)

// String implements fmt.Stringer.
func (f Fairness) String() string {
	switch f {
	case WeakFairness:
		return "weak-fairness"
	case NoFairness:
		return "no-fairness"
	default:
		return fmt.Sprintf("Fairness(%d)", int(f))
	}
}

// MaxDecisionValues bounds the number of distinct decision values the
// valence analysis can track (a bitmask word).
const MaxDecisionValues = 64

// ValenceInfo records, for every reachable state, the set of decision
// values attainable from it. A state is univalent if exactly one value is
// attainable and bivalent (more generally multivalent) if several are —
// the central notion of the FLP-style proofs surveyed in §2.2.4.
type ValenceInfo struct {
	masks []uint64
}

// Valence computes attainable-decision sets for every state. decide
// reports whether a state is a decided state and with which value
// (0 ≤ value < MaxDecisionValues). Decidedness is usually a property of
// terminal states, but intermediate decided states are handled too: their
// own value is included along with everything reachable beyond them.
func (g *Graph[S]) Valence(decide func(S) (int, bool)) (*ValenceInfo, error) {
	n := len(g.states)
	masks := make([]uint64, n)
	// Reverse adjacency for backward propagation.
	preds := make([][]int32, n)
	for i := range g.states {
		for _, e := range g.edges[i] {
			preds[e.To] = append(preds[e.To], int32(i))
		}
	}
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	for i, s := range g.states {
		if v, ok := decide(s); ok {
			if v < 0 || v >= MaxDecisionValues {
				return nil, fmt.Errorf("core: decision value %d out of range [0,%d)", v, MaxDecisionValues)
			}
			masks[i] |= 1 << uint(v)
			queue = append(queue, i)
			inQueue[i] = true
		}
	}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		inQueue[i] = false
		m := masks[i]
		for _, p := range preds[i] {
			if masks[p]|m != masks[p] {
				masks[p] |= m
				if !inQueue[p] {
					queue = append(queue, int(p))
					inQueue[p] = true
				}
			}
		}
	}
	return &ValenceInfo{masks: masks}, nil
}

// Values returns the sorted set of decision values attainable from state i.
func (v *ValenceInfo) Values(i int) []int {
	m := v.masks[i]
	out := make([]int, 0, bits.OnesCount64(m))
	for m != 0 {
		b := bits.TrailingZeros64(m)
		out = append(out, b)
		m &^= 1 << uint(b)
	}
	return out
}

// Count returns the number of distinct attainable decision values.
func (v *ValenceInfo) Count(i int) int { return bits.OnesCount64(v.masks[i]) }

// IsBivalent reports whether at least two decision values are attainable
// from state i.
func (v *ValenceInfo) IsBivalent(i int) bool { return bits.OnesCount64(v.masks[i]) >= 2 }

// IsUnivalent reports whether exactly one decision value is attainable.
func (v *ValenceInfo) IsUnivalent(i int) bool { return bits.OnesCount64(v.masks[i]) == 1 }

// IsNullvalent reports whether no decision is attainable from state i
// (every path from it avoids decided states forever or deadlocks).
func (v *ValenceInfo) IsNullvalent(i int) bool { return v.masks[i] == 0 }

// BivalentInitial returns a bivalent initial state id, if one exists.
// Its existence is the first lemma of the FLP proof (§2.2.4).
func (g *Graph[S]) BivalentInitial(v *ValenceInfo) (int, bool) {
	for _, i := range g.inits {
		if v.IsBivalent(i) {
			return i, true
		}
	}
	return 0, false
}

// Decider looks for a "decider" configuration in Herlihy's sense (§2.3):
// a bivalent state all of whose successors are univalent. If dec is found,
// the step structure around it is exactly the "hook" of the FLP-style
// case analyses.
func (g *Graph[S]) Decider(v *ValenceInfo) (int, bool) {
	for i := range g.states {
		if !v.IsBivalent(i) || len(g.edges[i]) == 0 {
			continue
		}
		all := true
		for _, e := range g.edges[i] {
			if !v.IsUnivalent(e.To) {
				all = false
				break
			}
		}
		if all {
			return i, true
		}
	}
	return 0, false
}

// Lasso is an infinite execution in finite-state form: a finite prefix
// from an initial state to an entry state, followed by a cycle repeated
// forever. It is the witness shape for liveness violations and for the
// non-deciding admissible executions of bivalence arguments.
type Lasso struct {
	Prefix Trace
	Cycle  Trace
	// Entry is the state id at the start of the cycle.
	Entry int
}

// LivenessResult reports the outcome of a leads-to check.
type LivenessResult struct {
	// Holds is true when the property was verified.
	Holds bool
	// Kind is "deadlock" or "livelock" when Holds is false.
	Kind string
	// Witness is a finite path to the deadlock state, or the lasso prefix
	// for a livelock.
	Witness Trace
	// Cycle is the violating fair cycle for livelocks.
	Cycle Trace
	// StateID is the deadlock state or the livelock cycle entry state.
	StateID int
}

// CheckLeadsTo verifies "premise leads to goal": from every reachable
// state satisfying premise, every fair execution eventually reaches a
// state satisfying goal. Violations are returned as a deadlock witness or
// a fair-cycle (livelock) lasso. This is the workhorse for progress and
// lockout-freedom conditions (§2.1).
func (g *Graph[S]) CheckLeadsTo(premise, goal func(S) bool, fair Fairness, numActors int) LivenessResult {
	n := len(g.states)
	goalSet := make([]bool, n)
	for i, s := range g.states {
		goalSet[i] = goal(s)
	}
	// H = states reachable from a premise state without entering goal.
	inH := make([]bool, n)
	var stack []int
	for i, s := range g.states {
		if premise(s) && !goalSet[i] && !inH[i] {
			inH[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.edges[i] {
			if !goalSet[e.To] && !inH[e.To] {
				inH[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	// Deadlock: terminal state inside H.
	for i := range g.states {
		if inH[i] && len(g.edges[i]) == 0 {
			return LivenessResult{Kind: "deadlock", Witness: g.PathTo(i), StateID: i}
		}
	}
	// Livelock: fair cycle inside H.
	if lasso, ok := g.fairCycleWithin(inH, fair, numActors); ok {
		return LivenessResult{Kind: "livelock", Witness: lasso.Prefix, Cycle: lasso.Cycle, StateID: lasso.Entry}
	}
	return LivenessResult{Holds: true}
}

// FairLassoWithin finds an infinite fair execution confined to the allowed
// state set, starting from an initial state that is itself allowed (the
// whole prefix stays inside the set). This is how a bivalence argument
// exhibits its non-deciding admissible execution: allowed = bivalent.
func (g *Graph[S]) FairLassoWithin(allowed func(int) bool, fair Fairness, numActors int) (Lasso, bool) {
	n := len(g.states)
	inH := make([]bool, n)
	var stack []int
	for _, i := range g.inits {
		if allowed(i) {
			inH[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.edges[i] {
			if allowed(e.To) && !inH[e.To] {
				inH[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return g.fairCycleWithin(inH, fair, numActors)
}

// fairCycleWithin finds a fair cycle entirely inside the state set inH.
// Weak fairness for an actor a is discharged within a strongly connected
// component if either a takes some edge of the component or a is disabled
// (in the whole graph) at some state of the component.
func (g *Graph[S]) fairCycleWithin(inH []bool, fair Fairness, numActors int) (Lasso, bool) {
	comps := g.sccsWithin(inH)
	for _, comp := range comps {
		if !g.sccHasInternalEdge(comp, inH) {
			continue
		}
		if fair == WeakFairness && !g.sccIsWeaklyFair(comp, inH, numActors) {
			continue
		}
		cycle, entry := g.buildFairCycle(comp, inH, fair, numActors)
		return Lasso{Prefix: g.PathTo(entry), Cycle: cycle, Entry: entry}, true
	}
	return Lasso{}, false
}

// sccsWithin computes strongly connected components of the subgraph
// induced by inH, using an iterative Tarjan algorithm.
func (g *Graph[S]) sccsWithin(inH []bool) [][]int {
	n := len(g.states)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter  int
		stack    []int
		comps    [][]int
		callFrom []int // DFS stack of states
		callEdge []int // per-frame next-edge cursor
	)
	for root := 0; root < n; root++ {
		if !inH[root] || index[root] != unvisited {
			continue
		}
		callFrom = append(callFrom[:0], root)
		callEdge = append(callEdge[:0], 0)
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(callFrom) > 0 {
			v := callFrom[len(callFrom)-1]
			ei := callEdge[len(callEdge)-1]
			advanced := false
			for ; ei < len(g.edges[v]); ei++ {
				w := g.edges[v][ei].To
				if !inH[w] {
					continue
				}
				if index[w] == unvisited {
					callEdge[len(callEdge)-1] = ei + 1
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callFrom = append(callFrom, w)
					callEdge = append(callEdge, 0)
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v finished.
			callFrom = callFrom[:len(callFrom)-1]
			callEdge = callEdge[:len(callEdge)-1]
			if len(callFrom) > 0 {
				parent := callFrom[len(callFrom)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// sccHasInternalEdge reports whether comp contains at least one edge
// (so that a cycle exists; single states without self-loops do not count).
func (g *Graph[S]) sccHasInternalEdge(comp []int, inH []bool) bool {
	inComp := make(map[int]bool, len(comp))
	for _, i := range comp {
		inComp[i] = true
	}
	for _, i := range comp {
		for _, e := range g.edges[i] {
			if inH[e.To] && inComp[e.To] {
				return true
			}
		}
	}
	return false
}

// sccIsWeaklyFair reports whether an infinite execution confined to comp
// can satisfy weak fairness for actors 0..numActors-1: each actor either
// takes an internal edge of comp or is disabled somewhere in comp.
func (g *Graph[S]) sccIsWeaklyFair(comp []int, inH []bool, numActors int) bool {
	inComp := make(map[int]bool, len(comp))
	for _, i := range comp {
		inComp[i] = true
	}
	for a := 0; a < numActors; a++ {
		satisfied := false
		for _, i := range comp {
			enabledHere := false
			for _, e := range g.edges[i] {
				if e.Actor != a {
					continue
				}
				enabledHere = true
				if inH[e.To] && inComp[e.To] {
					satisfied = true // actor a takes a step inside the SCC
					break
				}
			}
			if satisfied {
				break
			}
			if !enabledHere {
				satisfied = true // actor a is disabled at state i
				break
			}
		}
		if !satisfied {
			return false
		}
	}
	return true
}

// buildFairCycle constructs an explicit cycle within comp that, under weak
// fairness, discharges every actor's obligation: for each actor that is
// enabled throughout the component, the cycle includes one of its steps.
func (g *Graph[S]) buildFairCycle(comp []int, inH []bool, fair Fairness, numActors int) (Trace, int) {
	inComp := make(map[int]bool, len(comp))
	for _, i := range comp {
		inComp[i] = true
	}
	internal := func(from int, e edge) bool { return inH[e.To] && inComp[e.To] }

	// Choose must-visit edges: one internal edge per actor that takes
	// internal steps in the component (under weak fairness only).
	type mustEdge struct {
		from int
		e    edge
	}
	var musts []mustEdge
	if fair == WeakFairness {
		for a := 0; a < numActors; a++ {
			found := false
			for _, i := range comp {
				for _, e := range g.edges[i] {
					if e.Actor == a && internal(i, e) {
						musts = append(musts, mustEdge{from: i, e: e})
						found = true
						break
					}
				}
				if found {
					break
				}
			}
		}
	}
	// Pick a deterministic entry.
	entry := comp[0]
	for _, i := range comp {
		if i < entry {
			entry = i
		}
	}
	if len(musts) == 0 {
		// Any simple cycle through entry.
		if path, ok := g.pathWithin(entry, entry, inComp, inH, true); ok {
			return path, entry
		}
		// entry may not be on a cycle itself; fall back to first edge-bearing state.
		for _, i := range comp {
			if path, ok := g.pathWithin(i, i, inComp, inH, true); ok {
				return path, i
			}
		}
		return nil, entry
	}
	sort.Slice(musts, func(a, b int) bool { return musts[a].from < musts[b].from })
	entry = musts[0].from
	var cycle Trace
	cur := entry
	for _, m := range musts {
		seg, ok := g.pathWithin(cur, m.from, inComp, inH, false)
		if !ok {
			continue
		}
		cycle = append(cycle, seg...)
		cycle = append(cycle, TraceEvent{Label: m.e.Label, Actor: m.e.Actor})
		cur = m.e.To
	}
	seg, ok := g.pathWithin(cur, entry, inComp, inH, cur == entry)
	if ok {
		cycle = append(cycle, seg...)
	}
	return cycle, entry
}

// pathWithin finds a path from src to dst confined to the component. When
// src == dst and forceMove is true it finds a nonempty cycle.
func (g *Graph[S]) pathWithin(src, dst int, inComp map[int]bool, inH []bool, forceMove bool) (Trace, bool) {
	if src == dst && !forceMove {
		return nil, true
	}
	type pv struct {
		prev int
		e    edge
	}
	visited := map[int]pv{}
	queue := []int{}
	// Seed with successors of src so that cycles of length >= 1 are found.
	for _, e := range g.edges[src] {
		if inH[e.To] && inComp[e.To] {
			if e.To == dst {
				return Trace{{Label: e.Label, Actor: e.Actor}}, true
			}
			if _, seen := visited[e.To]; !seen {
				visited[e.To] = pv{prev: src, e: e}
				queue = append(queue, e.To)
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		for _, e := range g.edges[i] {
			if !inH[e.To] || !inComp[e.To] {
				continue
			}
			if e.To == dst {
				var rev []TraceEvent
				rev = append(rev, TraceEvent{Label: e.Label, Actor: e.Actor})
				cur := i
				for cur != src {
					p := visited[cur]
					rev = append(rev, TraceEvent{Label: p.e.Label, Actor: p.e.Actor})
					cur = p.prev
				}
				out := make(Trace, len(rev))
				for k := range rev {
					out[k] = rev[len(rev)-1-k]
				}
				return out, true
			}
			if _, seen := visited[e.To]; !seen {
				visited[e.To] = pv{prev: i, e: e}
				queue = append(queue, e.To)
			}
		}
	}
	return nil, false
}
