// Package sessions implements the sessions problem of Arjomandi, Fischer
// and Lynch ([8], §2.2.6): perform s "sessions", each an interval in which
// every process performs at least one output event ("flash"). A
// synchronous system does it in s rounds; in an asynchronous network the
// time (normalized so every message delay is at most 1) is at least about
// (s-1)·d for diameter d — a provable gap between synchronous and
// asynchronous time, established by the diagram-stretching argument: an
// execution whose flashes are not separated by cross-network message
// chains can be stretched so that the sessions collapse.
package sessions

import (
	"fmt"
	"sort"
)

// Flash is one output event.
type Flash struct {
	// Proc is the flashing process.
	Proc int
	// Time is the (virtual, normalized) real time of the flash.
	Time float64
}

// CountSessions returns the maximum number of disjoint sessions in the
// flash sequence: scanning in time order, a session closes as soon as
// every process has flashed since the previous session closed.
func CountSessions(flashes []Flash, n int) int {
	sorted := make([]Flash, len(flashes))
	copy(sorted, flashes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	sessions := 0
	seen := make([]bool, n)
	count := 0
	for _, f := range sorted {
		if f.Proc < 0 || f.Proc >= n {
			continue
		}
		if !seen[f.Proc] {
			seen[f.Proc] = true
			count++
			if count == n {
				sessions++
				seen = make([]bool, n)
				count = 0
			}
		}
	}
	return sessions
}

// Result reports one sessions-protocol run.
type Result struct {
	// Flashes are the output events.
	Flashes []Flash
	// Time is the completion time (normalized units).
	Time float64
	// Messages counts messages sent.
	Messages int
	// Sessions is the certified session count of the flash sequence.
	Sessions int
}

// RunSynchronous models the synchronous solution: in each of s rounds,
// every process flashes. Time s, zero messages.
func RunSynchronous(n, s int) Result {
	res := Result{Flashes: make([]Flash, 0, n*s)}
	for round := 1; round <= s; round++ {
		for p := 0; p < n; p++ {
			res.Flashes = append(res.Flashes, Flash{Proc: p, Time: float64(round)})
		}
	}
	res.Time = float64(s)
	res.Sessions = CountSessions(res.Flashes, n)
	return res
}

// RunTokenBarrier is the natural asynchronous solution on a line network
// 0-1-...-n-1 (diameter d = n-1): per session, a token sweeps from one
// end to the other and back; a process flashes when the token passes.
// Every message takes the worst-case normalized delay 1, so each session
// costs about 2d time — within a constant of the (s-1)·d lower bound.
func RunTokenBarrier(n, s int) (Result, error) {
	if n < 2 || s < 1 {
		return Result{}, fmt.Errorf("sessions: need n >= 2 and s >= 1, got %d/%d", n, s)
	}
	res := Result{}
	now := 0.0
	for session := 0; session < s; session++ {
		// Sweep right: 0 -> n-1. Each hop takes delay 1. A process
		// flashes when it receives the token (process 0 flashes at
		// launch).
		res.Flashes = append(res.Flashes, Flash{Proc: 0, Time: now})
		for p := 1; p < n; p++ {
			now++
			res.Messages++
			res.Flashes = append(res.Flashes, Flash{Proc: p, Time: now})
		}
		// Sweep back so process 0 knows the session completed before
		// starting the next (no flashes needed on the return trip).
		if session < s-1 {
			now += float64(n - 1)
			res.Messages += n - 1
		}
	}
	res.Time = now
	res.Sessions = CountSessions(res.Flashes, n)
	return res, nil
}

// LowerBound returns the asynchronous time lower bound (s-1)·d of [8]
// (up to a constant) for diameter d.
func LowerBound(s, d int) float64 { return float64((s - 1) * d) }

// RunUncoordinated models the "too fast" algorithm that flashes s times
// per process without any communication. Because no message chains
// separate the flashes, the adversary may stretch the diagram so that all
// of process 0's flashes precede all of process 1's, and so on — the
// flashes still happen, but they form only one session. This is the
// stretching argument made concrete.
func RunUncoordinated(n, s int) Result {
	res := Result{}
	now := 0.0
	for p := 0; p < n; p++ {
		for k := 0; k < s; k++ {
			now++
			res.Flashes = append(res.Flashes, Flash{Proc: p, Time: now})
		}
	}
	res.Time = now
	res.Sessions = CountSessions(res.Flashes, n)
	return res
}
