package sessions

import (
	"testing"
	"testing/quick"
)

func TestCountSessionsBasics(t *testing.T) {
	// Two full rounds of flashes = 2 sessions.
	flashes := []Flash{
		{0, 1}, {1, 1.5}, {0, 2}, {1, 2.5},
	}
	if got := CountSessions(flashes, 2); got != 2 {
		t.Fatalf("CountSessions = %d, want 2", got)
	}
	// A process never flashing means zero sessions.
	if got := CountSessions([]Flash{{0, 1}, {0, 2}}, 2); got != 0 {
		t.Fatalf("CountSessions = %d, want 0", got)
	}
	// Out-of-range procs are ignored.
	if got := CountSessions([]Flash{{5, 1}, {0, 2}, {1, 3}}, 2); got != 1 {
		t.Fatalf("CountSessions = %d, want 1", got)
	}
}

func TestSynchronousAchievesSSessionsInSTime(t *testing.T) {
	for _, s := range []int{1, 3, 5} {
		res := RunSynchronous(4, s)
		if res.Sessions != s {
			t.Errorf("s=%d: sessions = %d", s, res.Sessions)
		}
		if res.Time != float64(s) {
			t.Errorf("s=%d: time = %v, want %d", s, res.Time, s)
		}
	}
}

func TestTokenBarrierAchievesSessionsAboveLowerBound(t *testing.T) {
	for _, c := range []struct{ n, s int }{{4, 2}, {6, 3}, {8, 5}} {
		res, err := RunTokenBarrier(c.n, c.s)
		if err != nil {
			t.Fatalf("RunTokenBarrier(%d,%d): %v", c.n, c.s, err)
		}
		if res.Sessions != c.s {
			t.Errorf("n=%d s=%d: sessions = %d, want %d", c.n, c.s, res.Sessions, c.s)
		}
		d := c.n - 1
		if res.Time < LowerBound(c.s, d) {
			t.Errorf("n=%d s=%d: time %v below the (s-1)d bound %v — impossible",
				c.n, c.s, res.Time, LowerBound(c.s, d))
		}
		// And the synchronous solution is far faster: the provable gap.
		if float64(c.s) >= res.Time && c.s > 1 {
			t.Errorf("n=%d s=%d: no synchronous/asynchronous gap (async %v vs sync %d)",
				c.n, c.s, res.Time, c.s)
		}
	}
}

func TestTokenBarrierValidates(t *testing.T) {
	if _, err := RunTokenBarrier(1, 2); err == nil {
		t.Error("n=1 should be rejected")
	}
	if _, err := RunTokenBarrier(3, 0); err == nil {
		t.Error("s=0 should be rejected")
	}
}

func TestUncoordinatedCollapsesToOneSession(t *testing.T) {
	res := RunUncoordinated(4, 5)
	if len(res.Flashes) != 20 {
		t.Fatalf("flashes = %d, want 20", len(res.Flashes))
	}
	if res.Sessions != 1 {
		t.Fatalf("stretched uncoordinated run has %d sessions, want 1", res.Sessions)
	}
	if res.Messages != 0 {
		t.Fatalf("uncoordinated run sent %d messages", res.Messages)
	}
}

func TestSessionCountMonotoneProperty(t *testing.T) {
	// Property: the token barrier always certifies exactly s sessions and
	// its time grows linearly in both s and n.
	prop := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%6) + 2
		s := int(sRaw%4) + 1
		res, err := RunTokenBarrier(n, s)
		if err != nil || res.Sessions != s {
			return false
		}
		return res.Time >= LowerBound(s, n-1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
