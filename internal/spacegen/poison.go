package spacegen

// This file plants known-bad reduction hooks: a canonicalizer violating
// idempotence and an independence relation declaring conflicting actions
// independent. They are the negative half of the generator's ground truth —
// the engine's VerifyCanon / VerifyPOR falsifiers MUST reject them, and the
// fuzz targets assert exactly that. Each poison also reports (via the ok
// return of the constructor) whether the generated space can expose it at
// all, so callers skip spaces where the poison is vacuously sound.

// PoisonedCanon returns a canonicalizer that rotates (instead of sorting)
// every multi-replica family block one position left whenever the block is
// not constant. Rotation of a non-constant block is an automorphism image —
// so the mapped state is a legitimate orbit member — but it is not
// idempotent: rotating twice differs from rotating once (for block length
// >= 2 with at least two distinct values... every non-constant block of
// length 2, and almost all longer ones). The engine's VerifyCanon=1 check
// must therefore fail with ErrCanonUnsound as soon as any non-constant
// block is generated.
//
// ok is false when no family has Mult >= 2 or every multi-replica family
// has a single state: then every block is forever constant, the poisoned
// canon degenerates to the identity, and there is nothing to catch.
func (sp *Space) PoisonedCanon() (canon func(string) string, ok bool) {
	type block struct{ lo, hi int }
	var blocks []block
	for f, fam := range sp.Families {
		if fam.Mult > 1 {
			blocks = append(blocks, block{sp.blockStart[f], sp.blockStart[f] + fam.Mult})
			if fam.States > 1 {
				ok = true
			}
		}
	}
	return func(s string) string {
		b := []byte(s)
		for _, bl := range blocks {
			seg := b[bl.lo:bl.hi]
			constant := true
			for _, c := range seg[1:] {
				if c != seg[0] {
					constant = false
					break
				}
			}
			if constant {
				continue
			}
			first := seg[0]
			copy(seg, seg[1:])
			seg[len(seg)-1] = first
		}
		return string(b)
	}, ok
}

// PoisonedIndependence returns an independence relation that additionally
// declares two actions of the SAME component independent — a conflict by
// construction: both rewrite the same byte, so taking one either disables
// the other's edge or lands the diamond in different states. The engine's
// VerifyPOR=1 check must fail with ErrPORUnsound at the first expanded
// state where some component has two or more enabled actions.
//
// ok is true when some family root (state 0) has out-degree >= 2. The
// conflicting pair is then enabled at the INITIAL composite state, which
// every exploration expands first — so the catch cannot be dodged by the
// (poison-distorted) reduction pruning the branching states away. Any root
// pair genuinely conflicts: the spanning tree gives the root a non-self-loop
// edge, and edge labels are unique per family, so after either non-loop
// action the other's event no longer exists at the new state. Spaces whose
// roots are all straight-line starts cannot expose the poison at the init
// and are skipped by callers.
func (sp *Space) PoisonedIndependence() (indep func(s string, aActor, bActor int) bool, ok bool) {
	for _, fam := range sp.Families {
		if len(fam.Edges[0]) >= 2 {
			ok = true
		}
	}
	return func(string, int, int) bool { return true }, ok
}
