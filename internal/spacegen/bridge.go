package spacegen

import "repro/internal/engine"

// This file is the only engine-facing surface of the package: it adapts a
// generated Space onto engine.Differential. The generator core stays
// engine-free so the construction (and its planted truth) can be reasoned
// about — and reused — without reference to the system under test.

// ExpandFunc returns sp.Expand in the engine's expansion-context form.
func (sp *Space) ExpandFunc() engine.ExpandFunc[string] {
	return func(s string, x *engine.Ctx[string]) {
		sp.Expand(s, func(to, label string, actor int) { x.Emit(to, label, actor) })
	}
}

// Spec wires the space, its sound reduction hooks and its planted truth
// into a differential-oracle spec. Callers may override Workers or
// MaxStates on the returned value.
func (sp *Space) Spec() engine.DiffSpec[string] {
	truth := engine.DiffTruth{
		States:            sp.Truth.States,
		Terminals:         sp.Truth.Terminals,
		Decided:           sp.Truth.Decided,
		QuotientStates:    sp.Truth.QuotientStates,
		QuotientTerminals: sp.Truth.QuotientTerminals,
		QuotientDecided:   sp.Truth.QuotientDecided,
	}
	return engine.DiffSpec[string]{
		Name:        sp.Describe(),
		Inits:       []string{sp.Init()},
		Expand:      sp.ExpandFunc(),
		Canon:       sp.Canon(),
		Independent: AdaptIndependence(sp.Independence()),
		Decided:     sp.DecidedState,
		Truth:       &truth,
		// Every oracle arm runs the buffer-aliasing falsifier: generated
		// spaces materialize their emissions, so a trip here would point at
		// the engine's own scratch handling.
		VerifyAliasing: 1,
	}
}

// AdaptIndependence lifts an actor-level independence relation into the
// engine's action-level form (the generator's relations depend only on the
// acting components).
func AdaptIndependence(f func(s string, aActor, bActor int) bool) func(string, engine.Action[string], engine.Action[string]) bool {
	return func(s string, a, b engine.Action[string]) bool {
		return f(s, a.Actor, b.Actor)
	}
}
