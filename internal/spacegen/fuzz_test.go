package spacegen

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// The fuzz targets drive the differential oracle from raw fuzzer inputs:
// a seed plus the five shape knobs, each one byte (normalized() maps any
// value onto a generable config, so there are no rejected inputs). Replay a
// crash outside the fuzzer with the printed `hundred fuzz -seed ...` line.
//
// Seed corpora live under testdata/fuzz/<FuzzName>/; run with e.g.
//
//	go test ./internal/spacegen -fuzz FuzzDifferential -fuzztime 30s

// fuzzConfig maps raw fuzzer bytes onto a generator config. The caps keep a
// single iteration fast: the knobs are maxima, and normalized() clamps the
// floors.
func fuzzConfig(seed uint64, families, states, mult, extra, sinks byte) Config {
	return Config{
		Seed:      seed,
		Families:  int(families%4) + 1,
		MaxStates: int(states%8) + 2,
		MaxMult:   int(mult%3) + 1,
		MaxExtra:  int(extra % 5),
		MaxSinks:  int(sinks % 4),
	}
}

// fuzzStateCap bounds the spaces a single fuzz iteration explores; larger
// draws are skipped, not failed. Each iteration explores the space ~12
// times (4 modes x 3 worker counts), so the cap trades per-space depth for
// fuzzer throughput.
const fuzzStateCap = 4_000

// FuzzDifferential fuzzes the positive contract: every generated space must
// pass the full cross-mode oracle against its planted truth.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(0), byte(1), byte(3), byte(1), byte(2), byte(1))
	f.Add(uint64(42), byte(2), byte(4), byte(2), byte(3), byte(2))
	f.Add(uint64(1234), byte(3), byte(5), byte(1), byte(0), byte(0))
	f.Fuzz(func(t *testing.T, seed uint64, families, states, mult, extra, sinks byte) {
		cfg := fuzzConfig(seed, families, states, mult, extra, sinks)
		sp := Generate(cfg)
		if sp.Truth.States > fuzzStateCap {
			t.Skip("space too large for one fuzz iteration")
		}
		if _, err := engine.Differential(sp.Spec()); err != nil {
			shrunk := Shrink(cfg, func(c Config) bool {
				s := Generate(c)
				if s.Truth.States > fuzzStateCap {
					return false
				}
				_, e := engine.Differential(s.Spec())
				return e != nil
			})
			t.Fatalf("oracle divergence on %s:\n  %v\n  replay: %s",
				sp.Describe(), err, ReplayLine(shrunk, ""))
		}
	})
}

// FuzzStoreBackends fuzzes the store-backend contract: on every generated
// space, full mode under the spill backend (tiny budget, tiny pages, so
// even small spaces cross the spill threshold) must be byte-identical to
// the mem backend at every worker count, and a bitstate sweep under forced
// fingerprint collisions must flag itself lossy and never intern more
// states than the planted reachable count.
func FuzzStoreBackends(f *testing.F) {
	f.Add(uint64(0), byte(1), byte(3), byte(1), byte(2), byte(1))
	f.Add(uint64(7), byte(2), byte(4), byte(2), byte(1), byte(0))
	f.Add(uint64(99), byte(3), byte(5), byte(1), byte(3), byte(2))
	f.Fuzz(func(t *testing.T, seed uint64, families, states, mult, extra, sinks byte) {
		cfg := fuzzConfig(seed, families, states, mult, extra, sinks)
		sp := Generate(cfg)
		if sp.Truth.States > fuzzStateCap {
			t.Skip("space too large for one fuzz iteration")
		}
		spec := sp.Spec()
		spec.Stores = []store.Config{{Kind: store.Spill, MaxBytes: 1 << 9, PageBits: 4}}
		if _, err := engine.Differential(spec); err != nil {
			t.Fatalf("mem vs spill diverged on %s:\n  %v\n  replay: %s",
				sp.Describe(), err, ReplayLine(cfg, ""))
		}
		res, err := engine.Explore(spec.Inits, spec.Expand, engine.Options{
			Store: store.Config{Kind: store.Bitstate, FingerprintBits: 10},
		})
		if err != nil {
			t.Fatalf("bitstate sweep failed on %s: %v", sp.Describe(), err)
		}
		if !res.Stats.Lossy {
			t.Fatalf("bitstate sweep not flagged lossy on %s", sp.Describe())
		}
		if len(res.States) > sp.Truth.States {
			t.Fatalf("bitstate overcounted on %s: %d states > planted truth %d\n  replay: %s",
				sp.Describe(), len(res.States), sp.Truth.States, ReplayLine(cfg, ""))
		}
	})
}

// FuzzChainDifferential fuzzes the deep-narrow chain topology: every
// generated braid must pass the full cross-mode, cross-scheduler oracle
// against its closed-form truth. The depth mapping keeps one iteration
// bounded while still reaching depths in the thousands.
func FuzzChainDifferential(f *testing.F) {
	f.Add(uint64(0), uint16(100), byte(1))
	f.Add(uint64(7), uint16(1200), byte(3))
	f.Add(uint64(42), uint16(3000), byte(2))
	f.Fuzz(func(t *testing.T, seed uint64, chain uint16, lanes byte) {
		cfg := Config{
			Seed:    seed,
			Chain:   int(chain%4000) + 2,
			MaxMult: int(lanes%4) + 1,
		}
		sp := Generate(cfg)
		if sp.Truth.States > 3*fuzzStateCap {
			// Chains are cheap per state (frontier ~= lanes), so the cap is
			// looser than the product topology's.
			t.Skip("braid too large for one fuzz iteration")
		}
		if _, err := engine.Differential(sp.Spec()); err != nil {
			shrunk := Shrink(cfg, func(c Config) bool {
				s := Generate(c)
				if s.Truth.States > 3*fuzzStateCap {
					return false
				}
				_, e := engine.Differential(s.Spec())
				return e != nil
			})
			t.Fatalf("chain oracle divergence on %s:\n  %v\n  replay: %s",
				sp.Describe(), err, ReplayLine(shrunk, ""))
		}
	})
}

// FuzzPoisonedCanon fuzzes the negative contract for the canonicalizer: on
// every space where the rotation poison is observable, the engine's canon
// falsifier must reject it with ErrCanonUnsound.
func FuzzPoisonedCanon(f *testing.F) {
	f.Add(uint64(3), byte(2), byte(3), byte(2), byte(1), byte(0))
	f.Add(uint64(17), byte(1), byte(2), byte(2), byte(0), byte(0))
	f.Fuzz(func(t *testing.T, seed uint64, families, states, mult, extra, sinks byte) {
		cfg := fuzzConfig(seed, families, states, mult, extra, sinks)
		sp := Generate(cfg)
		if sp.Truth.States > fuzzStateCap {
			t.Skip("space too large for one fuzz iteration")
		}
		poisoned, ok := sp.PoisonedCanon()
		if !ok {
			t.Skip("no multi-replica family; poison unobservable")
		}
		spec := sp.Spec()
		spec.Canon = poisoned
		spec.Truth = nil
		_, err := engine.Differential(spec)
		if err == nil {
			t.Fatalf("poisoned canon escaped the falsifier on %s\n  replay: %s",
				sp.Describe(), ReplayLine(cfg, "canon"))
		}
		if !errors.Is(err, engine.ErrCanonUnsound) {
			t.Fatalf("poisoned canon surfaced as %v, want ErrCanonUnsound\n  replay: %s",
				err, ReplayLine(cfg, "canon"))
		}
	})
}

// FuzzPoisonedIndependence fuzzes the negative contract for POR: on every
// space where the everything-commutes poison is observable, the POR
// falsifier must reject it with ErrPORUnsound.
func FuzzPoisonedIndependence(f *testing.F) {
	f.Add(uint64(1), byte(2), byte(4), byte(1), byte(3), byte(0))
	f.Add(uint64(11), byte(1), byte(3), byte(1), byte(4), byte(0))
	f.Fuzz(func(t *testing.T, seed uint64, families, states, mult, extra, sinks byte) {
		cfg := fuzzConfig(seed, families, states, mult, extra, sinks)
		sp := Generate(cfg)
		if sp.Truth.States > fuzzStateCap {
			t.Skip("space too large for one fuzz iteration")
		}
		poisoned, ok := sp.PoisonedIndependence()
		if !ok {
			t.Skip("no root branching; poison unobservable")
		}
		spec := sp.Spec()
		spec.Independent = AdaptIndependence(poisoned)
		spec.Truth = nil
		_, err := engine.Differential(spec)
		if err == nil {
			t.Fatalf("poisoned independence escaped the falsifier on %s\n  replay: %s",
				sp.Describe(), ReplayLine(cfg, "indep"))
		}
		if !errors.Is(err, engine.ErrPORUnsound) {
			t.Fatalf("poisoned independence surfaced as %v, want ErrPORUnsound\n  replay: %s",
				err, ReplayLine(cfg, "indep"))
		}
	})
}
