package spacegen

import (
	"fmt"
	"strings"
)

// Shrink minimizes a failing configuration: it greedily lowers every knob
// toward its floor, keeping a candidate only while fails still reports the
// failure, and repeats to a fixpoint. The move order is fixed and the
// predicate is required to be deterministic, so the minimum is reproducible
// from the starting config alone — the returned Config is the replayable
// artifact to report (see ReplayLine).
//
// The knobs are maxima, so lowering them can only remove structure; the
// Seed is never touched (changing it would reproduce a different failure,
// not a smaller one). MaxSteps bounds the predicate evaluations; the greedy
// descent needs far fewer on any realistic config.
func Shrink(cfg Config, fails func(Config) bool) Config {
	cfg = cfg.normalized()
	const maxSteps = 10_000
	steps := 0
	try := func(cand Config) bool {
		if steps >= maxSteps {
			return false
		}
		steps++
		return fails(cand.normalized())
	}
	// Each move proposes a smaller config; halving moves first so huge
	// knobs collapse in O(log) probes, single decrements mop up.
	moves := []func(c Config) Config{
		func(c Config) Config { c.Chain /= 2; return c },
		func(c Config) Config { c.Families /= 2; return c },
		func(c Config) Config { c.MaxStates /= 2; return c },
		func(c Config) Config { c.MaxMult /= 2; return c },
		func(c Config) Config { c.MaxExtra /= 2; return c },
		func(c Config) Config { c.MaxSinks /= 2; return c },
		func(c Config) Config { c.Chain--; return c },
		func(c Config) Config { c.Families--; return c },
		func(c Config) Config { c.MaxStates--; return c },
		func(c Config) Config { c.MaxMult--; return c },
		func(c Config) Config { c.MaxExtra--; return c },
		func(c Config) Config { c.MaxSinks--; return c },
	}
	for changed := true; changed; {
		changed = false
		for _, mv := range moves {
			for {
				cand := mv(cfg).normalized()
				if cand == cfg || !try(cand) {
					break
				}
				cfg = cand
				changed = true
			}
		}
	}
	return cfg
}

// ReplayLine renders the cmd/hundred invocation that regenerates exactly
// this configuration (poison names the planted defect, or "" for a plain
// differential run).
func ReplayLine(cfg Config, poison string) string {
	cfg = cfg.normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "hundred fuzz -seed %d -families %d -states %d -mult %d -extra %d -sinks %d",
		cfg.Seed, cfg.Families, cfg.MaxStates, cfg.MaxMult, cfg.MaxExtra, cfg.MaxSinks)
	if cfg.Chain > 0 {
		fmt.Fprintf(&b, " -chain %d", cfg.Chain)
	}
	if poison != "" {
		fmt.Fprintf(&b, " -poison %s", poison)
	}
	return b.String()
}
