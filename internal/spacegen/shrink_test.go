package spacegen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
)

// failsWithPoisonedCanon is the deterministic shrink predicate: does the
// engine's canon falsifier still reject the rotating canon on the space
// cfg generates?
func failsWithPoisonedCanon(cfg Config) bool {
	sp := Generate(cfg)
	poisoned, ok := sp.PoisonedCanon()
	if !ok {
		return false
	}
	spec := sp.Spec()
	spec.Canon = poisoned
	spec.Truth = nil
	_, err := engine.Differential(spec)
	return errors.Is(err, engine.ErrCanonUnsound)
}

// TestShrinkPoisonedCanonFailure is the acceptance test for the shrinker: a
// seeded poisoned-canon failure must minimize to a tiny space (<= 8 full
// states), the minimum must still reproduce, and the replay line must carry
// every knob.
func TestShrinkPoisonedCanonFailure(t *testing.T) {
	start := Config{Seed: 3, Families: 3, MaxStates: 8, MaxMult: 3, MaxExtra: 4, MaxSinks: 2}
	if !failsWithPoisonedCanon(start) {
		t.Fatalf("starting config does not fail; pick another seed: %s", Generate(start).Describe())
	}
	shrunk := Shrink(start, failsWithPoisonedCanon)
	if !failsWithPoisonedCanon(shrunk) {
		t.Fatalf("shrunk config no longer fails: %+v", shrunk)
	}
	sp := Generate(shrunk)
	if sp.Truth.States > 8 {
		t.Fatalf("shrunk space still has %d states, want <= 8: %s", sp.Truth.States, sp.Describe())
	}
	if shrunk.Seed != start.Seed {
		t.Fatalf("shrinker changed the seed: %d -> %d", start.Seed, shrunk.Seed)
	}
	line := ReplayLine(shrunk, "canon")
	for _, want := range []string{"hundred fuzz", "-seed 3", "-families ", "-states ", "-mult ", "-extra ", "-sinks ", "-poison canon"} {
		if !strings.Contains(line, want) {
			t.Fatalf("replay line %q missing %q", line, want)
		}
	}
	t.Logf("shrunk to %s\n  %s", sp.Describe(), line)
}

// TestShrinkDeterministic pins that equal inputs shrink to equal minima.
func TestShrinkDeterministic(t *testing.T) {
	start := Config{Seed: 3, Families: 3, MaxStates: 8, MaxMult: 3, MaxExtra: 4, MaxSinks: 2}
	a := Shrink(start, failsWithPoisonedCanon)
	b := Shrink(start, failsWithPoisonedCanon)
	if a != b {
		t.Fatalf("nondeterministic shrink: %+v vs %+v", a, b)
	}
}

// TestShrinkNeverPassingPredicate pins the degenerate case: a predicate that
// never fails leaves the (normalized) config unchanged.
func TestShrinkNeverPassingPredicate(t *testing.T) {
	start := Config{Seed: 9, Families: 2, MaxStates: 5, MaxMult: 2, MaxExtra: 1, MaxSinks: 1}
	got := Shrink(start, func(Config) bool { return false })
	if got != start.normalized() {
		t.Fatalf("shrink moved a non-failing config: %+v -> %+v", start, got)
	}
}
