package spacegen

import (
	"sort"
	"testing"
)

// bruteForce explores a space by plain BFS — a from-scratch implementation
// sharing no code with the engine — and measures what the generator claims
// to have planted.
type bruteForce struct {
	states    int
	terminals int
	decided   int
	// quotient counts, measured by canonicalizing every reachable state.
	qstates, qterminals, qdecided int
	seen                          map[string]bool
}

func brute(sp *Space) bruteForce {
	canon := sp.Canon()
	bf := bruteForce{seen: map[string]bool{}}
	quo := map[string]bool{}
	queue := []string{sp.Init()}
	bf.seen[sp.Init()] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		bf.states++
		quo[canon(s)] = true
		deg := 0
		sp.Expand(s, func(to, _ string, _ int) {
			deg++
			if !bf.seen[to] {
				bf.seen[to] = true
				queue = append(queue, to)
			}
		})
		if deg == 0 {
			bf.terminals++
			if sp.DecidedState(s) {
				bf.decided++
			}
		}
	}
	bf.qstates = len(quo)
	for s := range quo {
		deg := 0
		sp.Expand(s, func(string, string, int) { deg++ })
		if deg == 0 {
			bf.qterminals++
			if sp.DecidedState(s) {
				bf.qdecided++
			}
		}
	}
	return bf
}

// TestPlantedTruthMatchesBruteForce is the generator's own ground-truth
// audit: for a spread of seeds and knob mixes, the closed-form planted
// counts must equal what an independent BFS measures.
func TestPlantedTruthMatchesBruteForce(t *testing.T) {
	configs := []Config{
		{Families: 1, MaxStates: 4, MaxMult: 1, MaxExtra: 0, MaxSinks: 0},
		{Families: 1, MaxStates: 5, MaxMult: 3, MaxExtra: 2, MaxSinks: 2},
		{Families: 2, MaxStates: 4, MaxMult: 2, MaxExtra: 3, MaxSinks: 3},
		{Families: 3, MaxStates: 3, MaxMult: 2, MaxExtra: 1, MaxSinks: 1},
	}
	for _, base := range configs {
		for seed := uint64(0); seed < 25; seed++ {
			cfg := base
			cfg.Seed = seed
			sp := Generate(cfg)
			if sp.Truth.States > 100_000 {
				continue // keep the audit fast; the differential tests cover scale
			}
			bf := brute(sp)
			got := Truth{
				States: bf.states, Terminals: bf.terminals, Decided: bf.decided,
				QuotientStates: bf.qstates, QuotientTerminals: bf.qterminals, QuotientDecided: bf.qdecided,
			}
			if got != sp.Truth {
				t.Fatalf("%s:\nplanted  %+v\nmeasured %+v", sp.Describe(), sp.Truth, got)
			}
		}
	}
}

// TestGenerateDeterministic pins the seed contract: equal configs generate
// equal spaces.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Families: 2, MaxStates: 6, MaxMult: 2, MaxExtra: 3, MaxSinks: 2}
	a, b := Generate(cfg), Generate(cfg)
	if a.Describe() != b.Describe() {
		t.Fatalf("same config, different spaces:\n%s\n%s", a.Describe(), b.Describe())
	}
	edges := func(sp *Space) []string {
		var out []string
		for _, fam := range sp.Families {
			for u, es := range fam.Edges {
				for _, e := range es {
					out = append(out, string(rune('0'+u))+e.Label+string(rune('0'+e.To)))
				}
			}
		}
		sort.Strings(out)
		return out
	}
	ea, eb := edges(a), edges(b)
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %s vs %s", i, ea[i], eb[i])
		}
	}
}

// TestCanonSoundByConstruction spot-checks the canonicalizer contract the
// quotient truth rests on: idempotence everywhere, and invariance of the
// planted predicates on representatives.
func TestCanonSoundByConstruction(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		sp := Generate(Config{Seed: seed, Families: 2, MaxStates: 4, MaxMult: 3, MaxExtra: 2, MaxSinks: 2})
		canon := sp.Canon()
		for s := range brute(sp).seen {
			rep := canon(s)
			if canon(rep) != rep {
				t.Fatalf("seed %d: canon not idempotent at %q -> %q -> %q", seed, s, rep, canon(rep))
			}
			if sp.Terminal(s) != sp.Terminal(rep) || sp.DecidedState(s) != sp.DecidedState(rep) {
				t.Fatalf("seed %d: predicates not orbit-invariant at %q vs %q", seed, s, rep)
			}
		}
	}
}

// TestNormalizedClamps pins the fuzz-facing clamping: any knob values map
// onto a generable config.
func TestNormalizedClamps(t *testing.T) {
	sp := Generate(Config{Seed: 1, Families: -3, MaxStates: 1000, MaxMult: 0, MaxExtra: -1, MaxSinks: -5})
	if got := sp.Cfg; got.Families != 1 || got.MaxStates != MaxFamilyStates || got.MaxMult != 1 || got.MaxExtra != 0 || got.MaxSinks != 0 {
		t.Fatalf("normalized config = %+v", got)
	}
	if sp.Truth.States < 2 {
		t.Fatalf("degenerate space: %s", sp.Describe())
	}
}
