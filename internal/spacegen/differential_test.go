package spacegen

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// TestDifferentialOracle is the tentpole acceptance test: 200+ generated
// spaces, each run through every mode combination (sequential, parallel x2
// and x8, symmetry quotient, ample-set POR, quotient+POR) with fingerprint,
// verdict and Stats-invariant equality asserted by engine.Differential
// against the planted truth. Every space also re-runs full mode under the
// spill store at a deliberately tiny budget (small pages so even these
// spaces cross the spill threshold), which must come out byte-identical to
// the mem backend; Dir is left empty so each run gets — and cleans up — its
// own segment directory.
func TestDifferentialOracle(t *testing.T) {
	shapes := []Config{
		{Families: 1, MaxStates: 6, MaxMult: 2, MaxExtra: 3, MaxSinks: 2},
		{Families: 2, MaxStates: 5, MaxMult: 2, MaxExtra: 2, MaxSinks: 2},
		{Families: 2, MaxStates: 4, MaxMult: 3, MaxExtra: 3, MaxSinks: 1},
		{Families: 3, MaxStates: 4, MaxMult: 2, MaxExtra: 2, MaxSinks: 2},
	}
	const seedsPerShape = 55 // 4 shapes x 55 = 220 spaces
	ran := 0
	for _, shape := range shapes {
		for seed := uint64(0); seed < seedsPerShape; seed++ {
			cfg := shape
			cfg.Seed = seed
			sp := Generate(cfg)
			if sp.Truth.States > 30_000 {
				// Bound per-space work; the knobs make this rare.
				continue
			}
			spec := sp.Spec()
			spec.Stores = []store.Config{{Kind: store.Spill, MaxBytes: 1 << 9, PageBits: 4}}
			if _, err := engine.Differential(spec); err != nil {
				t.Fatalf("divergence on %s:\n  %v\n  replay: %s",
					sp.Describe(), err, ReplayLine(cfg, ""))
			}
			ran++
		}
	}
	if ran < 200 {
		t.Fatalf("only %d spaces ran the full oracle; need >= 200", ran)
	}
	t.Logf("oracle passed on %d generated spaces", ran)
}

// TestDifferentialChainOracle covers the deep-narrow chain topology: the
// regime where the barrier scheduler degenerates to sequential execution
// and the steal scheduler's handoff/termination machinery carries all the
// load. Every space runs the full oracle (which sweeps both schedulers at
// every worker count) against the closed-form chain truth; one deep braid
// additionally runs the acceptance worker grid 1/2/8/16.
func TestDifferentialChainOracle(t *testing.T) {
	shapes := []Config{
		{Chain: 900, MaxMult: 1},  // single lane: pure chain, frontier 1
		{Chain: 600, MaxMult: 3},  // few lanes, odd/even depth mix
		{Chain: 1800, MaxMult: 2}, // planted depth in the thousands
	}
	for _, shape := range shapes {
		for seed := uint64(0); seed < 5; seed++ {
			cfg := shape
			cfg.Seed = seed
			sp := Generate(cfg)
			if _, err := engine.Differential(sp.Spec()); err != nil {
				t.Fatalf("divergence on %s:\n  %v\n  replay: %s",
					sp.Describe(), err, ReplayLine(cfg, ""))
			}
		}
	}
	cfg := Config{Seed: 1, Chain: 4000, MaxMult: 4}
	sp := Generate(cfg)
	spec := sp.Spec()
	spec.Workers = []int{1, 2, 8, 16}
	if _, err := engine.Differential(spec); err != nil {
		t.Fatalf("divergence on %s:\n  %v\n  replay: %s",
			sp.Describe(), err, ReplayLine(cfg, ""))
	}
}

// TestDifferentialCatchesPoisonedCanon plants the broken (rotating,
// non-idempotent) canonicalizer and requires the engine's canon falsifier
// to reject it deterministically.
func TestDifferentialCatchesPoisonedCanon(t *testing.T) {
	caught := 0
	for seed := uint64(0); seed < 40; seed++ {
		sp := Generate(Config{Seed: seed, Families: 2, MaxStates: 4, MaxMult: 2, MaxExtra: 2, MaxSinks: 1})
		poisoned, ok := sp.PoisonedCanon()
		if !ok {
			continue
		}
		spec := sp.Spec()
		spec.Canon = poisoned
		spec.Truth = nil // the quotient truth no longer applies
		_, err := engine.Differential(spec)
		if err == nil {
			t.Fatalf("poisoned canon not caught on %s\n  replay: %s", sp.Describe(), ReplayLine(sp.Cfg, "canon"))
		}
		if !errors.Is(err, engine.ErrCanonUnsound) {
			t.Fatalf("poisoned canon surfaced as %v, want ErrCanonUnsound", err)
		}
		caught++
	}
	if caught == 0 {
		t.Fatal("no seed produced a poisonable space; generator knobs too small")
	}
}

// TestDifferentialCatchesPoisonedIndependence plants the everything-commutes
// independence relation and requires the POR falsifier to reject it.
func TestDifferentialCatchesPoisonedIndependence(t *testing.T) {
	caught := 0
	for seed := uint64(0); seed < 40; seed++ {
		sp := Generate(Config{Seed: seed, Families: 2, MaxStates: 5, MaxMult: 2, MaxExtra: 3, MaxSinks: 1})
		poisoned, ok := sp.PoisonedIndependence()
		if !ok {
			continue
		}
		spec := sp.Spec()
		spec.Independent = AdaptIndependence(poisoned)
		spec.Truth = nil // reduction under a bogus relation proves nothing
		_, err := engine.Differential(spec)
		if err == nil {
			t.Fatalf("poisoned independence not caught on %s\n  replay: %s", sp.Describe(), ReplayLine(sp.Cfg, "indep"))
		}
		if !errors.Is(err, engine.ErrPORUnsound) {
			t.Fatalf("poisoned independence surfaced as %v, want ErrPORUnsound", err)
		}
		caught++
	}
	if caught == 0 {
		t.Fatal("no seed produced a poisonable space; generator knobs too small")
	}
}

// TestDifferentialTruncation checks the oracle stays coherent when MaxStates
// cuts exploration short: no truth assertions, but all modes and worker
// counts must still agree with themselves.
func TestDifferentialTruncation(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		sp := Generate(Config{Seed: seed, Families: 2, MaxStates: 6, MaxMult: 2, MaxExtra: 3, MaxSinks: 1})
		spec := sp.Spec()
		spec.MaxStates = sp.Truth.States / 2
		if spec.MaxStates < 1 {
			continue
		}
		spec.Truth = nil // counts are unreachable under truncation
		if _, err := engine.Differential(spec); err != nil {
			t.Fatalf("truncated run diverged on %s: %v", sp.Describe(), err)
		}
	}
}
