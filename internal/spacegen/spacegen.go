// Package spacegen generates random labeled transition systems with
// planted, known-by-construction ground truth, for differential testing of
// the exploration engine's mode stack (sequential, parallel, symmetry
// quotient, ample-set POR, and their composition).
//
// The construction is an asynchronous product of independent components.
// Each component runs a small random "family" digraph (a spanning tree from
// state 0 plus extra edges, with a chosen set of sink states), and a family
// may be replicated several times — identical replicas stepping on disjoint
// bytes of the composite state. That shape makes every ground truth exact
// by construction rather than by re-measurement:
//
//   - reachability: every family state is tree-reachable and components
//     step independently, so the reachable composite space is the full
//     product — Π_f R_f^{m_f} states for family sizes R_f and
//     multiplicities m_f;
//   - terminals: a composite state is terminal iff every component sits on
//     a family sink, so the terminal count is Π_f D_f^{m_f} for sink
//     counts D_f, and each sink is flagged decided or deadlocked, giving
//     an exact decided-terminal count too;
//   - symmetry: replicas of a family are interchangeable, so sorting each
//     family's block of the state string is a sound canonicalizer, and the
//     quotient has exactly Π_f C(R_f+m_f-1, m_f) states (multisets of
//     replica states) — the quotient's ReductionFactor is predictable;
//   - independence: actions of distinct components touch disjoint bytes,
//     so declaring them independent satisfies the full ample-set contract
//     (commuting diamonds, persistence), and POR must preserve the exact
//     terminal state set.
//
// A second topology (Config.Chain) plants the opposite extreme: a
// deep-narrow "braid" of identical linear chains hanging off one root,
// with branching ~1 and planted depth in the thousands. Wide products
// stress per-state throughput; the chains stress the scheduler (the
// frontier never exceeds the lane count), covering the regime the
// work-stealing scheduler exists for. Its ground truth, lane-symmetry
// canonicalizer and (all-false) independence relation are closed-form too.
//
// Deliberately-poisoned variants of the canonicalizer and independence
// relation (see poison.go) provide the negative ground truth: the engine's
// VerifyCanon / VerifyPOR falsifiers must reject them.
//
// The generator core speaks plain states, labels and actors; the single
// engine-facing file (bridge.go) adapts a Space onto engine.Differential
// for the fuzz targets and the cmd/hundred fuzz subcommand.
package spacegen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// stateBase is the byte encoding a component sitting on family state 0;
// family state i renders as stateBase+i. Keeping the encoding printable
// makes divergence reports and shrinker output readable.
const stateBase = 'A'

// MaxFamilyStates bounds the per-family state count so a component always
// fits one printable byte.
const MaxFamilyStates = 50

// Edge is one transition of a family digraph.
type Edge struct {
	// To is the destination family state.
	To int
	// Label identifies the edge within its family; labels are unique per
	// family, so (Label, component) identifies an action of the product.
	Label string
}

// Family is one component type: a digraph over states 0..States-1 in which
// every state is reachable from 0, Sinks have no outgoing edges, and every
// non-sink state has at least one.
type Family struct {
	// States is the number of family states (all reachable by construction).
	States int
	// Edges[i] are the out-edges of family state i, in emission order.
	Edges [][]Edge
	// Sink[i] reports that state i is terminal.
	Sink []bool
	// Decided[i] reports that sink i models a decided halt rather than a
	// deadlock. False for non-sinks.
	Decided []bool
	// Mult is the number of identical replicas of this family in the
	// product.
	Mult int
}

// Config are the generator knobs. Every knob is a maximum: the per-family
// draws stay within it, so shrinking a knob shrinks the space.
type Config struct {
	// Seed drives every random draw; equal Configs generate equal Spaces.
	Seed uint64
	// Families is the number of distinct component families (min 1).
	Families int
	// MaxStates is the largest per-family state count (min 2).
	MaxStates int
	// MaxMult is the largest per-family replica count (min 1).
	MaxMult int
	// MaxExtra is the largest number of extra (non-tree) edges per family;
	// extra edges may close cycles, exercising the POR cycle proviso.
	MaxExtra int
	// MaxSinks is the largest number of planted sinks per family (may be 0:
	// then every composite run is non-terminating).
	MaxSinks int
	// Chain, when positive, switches the generator to the deep-narrow chain
	// ("braid") topology instead of the product construction: up to MaxMult
	// lanes (capped at MaxChainLanes), each a linear chain of the same
	// planted depth drawn in (Chain/2, Chain], hanging off a single root.
	// Branching factor is 1 everywhere except the root, so BFS frontiers
	// never exceed the lane count and exploration cost is dominated by
	// scheduling — the regime the work-stealing scheduler exists for. The
	// product knobs other than MaxMult are ignored. Ground truth stays
	// closed-form: 1 + lanes*depth states, one terminal per lane (decided
	// iff the depth is even, uniformly across lanes so decidedness is
	// orbit-invariant), and lane symmetry gives a 1 + depth state quotient.
	Chain int
}

// MaxChainLanes caps the chain topology's lane count so a lane always
// renders as one printable byte.
const MaxChainLanes = 26

// MaxChainDepth caps the planted chain depth.
const MaxChainDepth = 100_000

// normalized returns cfg with every knob raised to its minimum viable
// value, so arbitrary fuzzer inputs map onto a generable configuration.
func (cfg Config) normalized() Config {
	if cfg.Families < 1 {
		cfg.Families = 1
	}
	if cfg.MaxStates < 2 {
		cfg.MaxStates = 2
	}
	if cfg.MaxStates > MaxFamilyStates {
		cfg.MaxStates = MaxFamilyStates
	}
	if cfg.MaxMult < 1 {
		cfg.MaxMult = 1
	}
	if cfg.MaxExtra < 0 {
		cfg.MaxExtra = 0
	}
	if cfg.MaxSinks < 0 {
		cfg.MaxSinks = 0
	}
	if cfg.Chain < 0 {
		cfg.Chain = 0
	}
	if cfg.Chain > MaxChainDepth {
		cfg.Chain = MaxChainDepth
	}
	return cfg
}

// Truth is the planted ground truth of a generated Space. All counts are
// exact consequences of the construction, not measurements.
type Truth struct {
	// States is the reachable composite state count: Π_f R_f^{m_f}.
	States int
	// Terminals is the reachable terminal count: Π_f D_f^{m_f}.
	Terminals int
	// Decided is the count of terminals whose components all halted on
	// decided sinks.
	Decided int
	// QuotientStates is the state count of the symmetry quotient under
	// Canon: Π_f C(R_f+m_f-1, m_f).
	QuotientStates int
	// QuotientTerminals is the quotient's terminal count:
	// Π_f C(D_f+m_f-1, m_f).
	QuotientTerminals int
	// QuotientDecided is the quotient's decided-terminal count.
	QuotientDecided int
}

// Space is one generated product system plus its planted truth.
type Space struct {
	// Cfg is the configuration the space was generated from.
	Cfg Config
	// Families are the component types, in generation order.
	Families []Family
	// Truth is the planted ground truth.
	Truth Truth

	// comp[i] is the family index of component i; replicas of a family are
	// contiguous, so family blocks of the state string can be sorted
	// in place by the canonicalizer.
	comp []int
	// blockStart[f] is the component index where family f's block begins.
	blockStart []int

	// lanes and depth describe the chain topology; depth > 0 selects it
	// (Families and comp are then empty).
	lanes, depth int
}

// chainRoot is the chain topology's initial state; lane l at position p
// renders as byte('A'+l) + ":" + decimal(p).
const chainRoot = "*"

// Generate builds the space for cfg. It never fails: out-of-range knobs
// are clamped to the nearest viable value first (see Config).
func Generate(cfg Config) *Space {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	sp := &Space{Cfg: cfg}
	if cfg.Chain > 0 {
		sp.lanes = 1 + rng.Intn(min(cfg.MaxMult, MaxChainLanes))
		lo := cfg.Chain/2 + 1
		sp.depth = lo + rng.Intn(cfg.Chain-lo+1)
		sp.Truth = chainTruth(sp.lanes, sp.depth)
		return sp
	}
	for f := 0; f < cfg.Families; f++ {
		fam := genFamily(rng, cfg)
		sp.blockStart = append(sp.blockStart, len(sp.comp))
		for r := 0; r < fam.Mult; r++ {
			sp.comp = append(sp.comp, f)
		}
		sp.Families = append(sp.Families, fam)
	}
	sp.Truth = computeTruth(sp.Families)
	return sp
}

// genFamily draws one family: a spanning tree rooted at 0, a sink set
// among the childless states, and extra edges out of the non-sinks.
func genFamily(rng *rand.Rand, cfg Config) Family {
	n := 2 + rng.Intn(cfg.MaxStates-1)
	fam := Family{
		States:  n,
		Edges:   make([][]Edge, n),
		Sink:    make([]bool, n),
		Decided: make([]bool, n),
		Mult:    1 + rng.Intn(cfg.MaxMult),
	}
	// Spanning tree: every state i>0 hangs off an earlier state, so all n
	// states are reachable from 0.
	edgeID := 0
	addEdge := func(from, to int) {
		fam.Edges[from] = append(fam.Edges[from], Edge{To: to, Label: fmt.Sprintf("e%d", edgeID)})
		edgeID++
	}
	hasChild := make([]bool, n)
	for i := 1; i < n; i++ {
		p := rng.Intn(i)
		addEdge(p, i)
		hasChild[p] = true
	}
	// Sinks: childless states may drop their (nonexistent) out-edges. The
	// root always keeps at least one edge (n >= 2 gives it a child), so the
	// space never collapses to a single terminal init.
	var childless []int
	for i := 1; i < n; i++ {
		if !hasChild[i] {
			childless = append(childless, i)
		}
	}
	wantSinks := 0
	if cfg.MaxSinks > 0 && len(childless) > 0 {
		wantSinks = rng.Intn(min(cfg.MaxSinks, len(childless)) + 1)
	}
	for _, i := range rng.Perm(len(childless))[:wantSinks] {
		s := childless[i]
		fam.Sink[s] = true
		fam.Decided[s] = rng.Intn(2) == 1
	}
	// Childless states not planted as sinks get a fallback edge, keeping the
	// invariant that exactly the planted sinks are terminal.
	for _, s := range childless {
		if !fam.Sink[s] {
			addEdge(s, rng.Intn(n))
		}
	}
	// Extra edges (possibly cycles, possibly parallel to tree edges — the
	// distinct labels keep the multigraph deterministic): only non-sinks
	// may grow them, so planted sinks stay terminal.
	extra := rng.Intn(cfg.MaxExtra + 1)
	for k := 0; k < extra; k++ {
		from := rng.Intn(n)
		if fam.Sink[from] {
			continue // a dropped draw, not a retry: keeps generation O(extra)
		}
		addEdge(from, rng.Intn(n))
	}
	return fam
}

// computeTruth evaluates the closed-form planted counts.
func computeTruth(fams []Family) Truth {
	t := Truth{States: 1, Terminals: 1, Decided: 1, QuotientStates: 1, QuotientTerminals: 1, QuotientDecided: 1}
	for _, fam := range fams {
		sinks, decided := 0, 0
		for i := 0; i < fam.States; i++ {
			if fam.Sink[i] {
				sinks++
				if fam.Decided[i] {
					decided++
				}
			}
		}
		t.States *= pow(fam.States, fam.Mult)
		t.Terminals *= pow(sinks, fam.Mult)
		t.Decided *= pow(decided, fam.Mult)
		t.QuotientStates *= multisets(fam.States, fam.Mult)
		t.QuotientTerminals *= multisets(sinks, fam.Mult)
		t.QuotientDecided *= multisets(decided, fam.Mult)
	}
	return t
}

// chainTruth evaluates the chain topology's closed-form counts: the root
// plus lanes*depth lane states; one terminal per lane end, decided iff the
// depth is even (uniform across lanes, so decidedness is orbit-invariant
// under the lane symmetry); and a quotient that collapses every lane onto
// lane A.
func chainTruth(lanes, depth int) Truth {
	t := Truth{
		States:            1 + lanes*depth,
		Terminals:         lanes,
		QuotientStates:    1 + depth,
		QuotientTerminals: 1,
	}
	if depth%2 == 0 {
		t.Decided = lanes
		t.QuotientDecided = 1
	}
	return t
}

// pow is integer exponentiation (small operands by construction).
func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// multisets is C(n+k-1, k): the number of size-k multisets over n symbols.
func multisets(n, k int) int {
	if n == 0 {
		return 0
	}
	// C(n+k-1, k) computed multiplicatively; operands are small.
	num, den := 1, 1
	for i := 1; i <= k; i++ {
		num *= n - 1 + i
		den *= i
	}
	return num / den
}

// Components returns the number of components in the product.
func (sp *Space) Components() int { return len(sp.comp) }

// Init returns the single initial composite state: every component on its
// family's state 0 (or the chain root).
func (sp *Space) Init() string {
	if sp.depth > 0 {
		return chainRoot
	}
	b := make([]byte, len(sp.comp))
	for i := range b {
		b[i] = stateBase
	}
	return string(b)
}

// chainState renders lane l at position p.
func chainState(lane, pos int) string {
	return string(byte('A'+lane)) + ":" + strconv.Itoa(pos)
}

// chainPos decodes a lane state's position (s must not be the root).
func chainPos(s string) int {
	p, _ := strconv.Atoi(s[2:])
	return p
}

// Expand emits every enabled action of s: for each component, the out-edges
// of its current family state, with the component index as the actor. The
// emission order (components ascending, family edge order within) is fixed,
// so Expand is a pure deterministic function of s.
func (sp *Space) Expand(s string, emit func(to, label string, actor int)) {
	if sp.depth > 0 {
		if s == chainRoot {
			for l := 0; l < sp.lanes; l++ {
				emit(chainState(l, 1), "start", l)
			}
			return
		}
		if p := chainPos(s); p < sp.depth {
			emit(chainState(int(s[0]-'A'), p+1), "step", int(s[0]-'A'))
		}
		return
	}
	for i := 0; i < len(s); i++ {
		fam := sp.Families[sp.comp[i]]
		for _, e := range fam.Edges[s[i]-stateBase] {
			b := []byte(s)
			b[i] = stateBase + byte(e.To)
			emit(string(b), e.Label, i)
		}
	}
}

// Terminal reports whether composite state s is terminal (every component
// on a sink).
func (sp *Space) Terminal(s string) bool {
	if sp.depth > 0 {
		return s != chainRoot && chainPos(s) == sp.depth
	}
	for i := 0; i < len(s); i++ {
		if !sp.Families[sp.comp[i]].Sink[s[i]-stateBase] {
			return false
		}
	}
	return true
}

// DecidedState reports whether composite state s is a decided terminal
// (every component halted on a decided sink).
func (sp *Space) DecidedState(s string) bool {
	if sp.depth > 0 {
		return sp.Terminal(s) && sp.depth%2 == 0
	}
	for i := 0; i < len(s); i++ {
		if !sp.Families[sp.comp[i]].Decided[s[i]-stateBase] {
			return false
		}
	}
	return true
}

// Canon returns the sound symmetry canonicalizer: each family's block of
// the state string sorted ascending. Replicas of a family are identical
// and touch disjoint bytes, so every block permutation is an automorphism
// of the product; the sorted representative is idempotent and
// step-commuting by construction.
func (sp *Space) Canon() func(string) string {
	if sp.depth > 0 {
		// Lane symmetry: the lanes are identical chains, so relabeling any
		// lane state onto lane A picks one representative per orbit. The
		// root is alone in its orbit; idempotence and step-commutation are
		// immediate (every lane state has the single successor "one step
		// further on the same lane", which the relabeling commutes with).
		return func(s string) string {
			if s == chainRoot || s[0] == 'A' {
				return s
			}
			return "A" + s[1:]
		}
	}
	type block struct{ lo, hi int }
	var blocks []block
	for f, fam := range sp.Families {
		if fam.Mult > 1 {
			blocks = append(blocks, block{sp.blockStart[f], sp.blockStart[f] + fam.Mult})
		}
	}
	return func(s string) string {
		if len(blocks) == 0 {
			return s
		}
		b := []byte(s)
		for _, bl := range blocks {
			seg := b[bl.lo:bl.hi]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}
		return string(b)
	}
}

// Independence returns the sound independence relation: two enabled actions
// commute iff they belong to distinct components. Distinct components
// rewrite disjoint bytes of the state, so the commuting diamond closes
// exactly, neither action can disable the other, and deferred components'
// enabled sets are invariant under other components' steps (the ample-set
// persistence condition holds with equality).
func (sp *Space) Independence() func(s string, aActor, bActor int) bool {
	if sp.depth > 0 {
		// No two chain actions commute: the only multi-enabled state is the
		// root, and taking one lane's start disables every other lane's
		// (the successor state has a single out-edge). The all-false
		// relation is the strongest sound one — POR degenerates to full
		// exploration, which still exercises the ample-set machinery (and
		// the steal scheduler's epoch submode) on the deep-narrow shape.
		return func(string, int, int) bool { return false }
	}
	return func(_ string, aActor, bActor int) bool {
		return aActor != bActor
	}
}

// Describe renders the space's shape and truth on one line, for divergence
// reports and the fuzz subcommand.
func (sp *Space) Describe() string {
	if sp.depth > 0 {
		return fmt.Sprintf("seed=%d chain[lanes=%d depth=%d] truth{states=%d terminals=%d decided=%d quotient=%d qterm=%d qdec=%d}",
			sp.Cfg.Seed, sp.lanes, sp.depth,
			sp.Truth.States, sp.Truth.Terminals, sp.Truth.Decided,
			sp.Truth.QuotientStates, sp.Truth.QuotientTerminals, sp.Truth.QuotientDecided)
	}
	var fams []string
	for _, fam := range sp.Families {
		edges, sinks := 0, 0
		for i := 0; i < fam.States; i++ {
			edges += len(fam.Edges[i])
			if fam.Sink[i] {
				sinks++
			}
		}
		fams = append(fams, fmt.Sprintf("%d states/%d edges/%d sinks x%d", fam.States, edges, sinks, fam.Mult))
	}
	return fmt.Sprintf("seed=%d [%s] truth{states=%d terminals=%d decided=%d quotient=%d qterm=%d qdec=%d}",
		sp.Cfg.Seed, strings.Join(fams, "; "),
		sp.Truth.States, sp.Truth.Terminals, sp.Truth.Decided,
		sp.Truth.QuotientStates, sp.Truth.QuotientTerminals, sp.Truth.QuotientDecided)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
