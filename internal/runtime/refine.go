package runtime

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrNoModel is returned by Refine for workloads running at a scale their
// reference model cannot explore (Model returned nil): live-only sweeps
// are legitimate, but they carry no conformance verdict.
var ErrNoModel = errors.New("runtime: workload has no explorable model at this scale")

// ErrNotEmbedded is the refinement failure: the observed execution is not
// a path of the explored state space, so the live implementation took a
// step its model forbids.
var ErrNotEmbedded = errors.New("runtime: live trace does not embed in the explored state space")

// ErrNotQuiescent is the liveness half of the oracle: the live run
// drained every pending action under a fault-free schedule, yet no model
// state consistent with the observation is terminal — the model could
// still act where the implementation has gone silent (a lost
// retransmission, a dropped timer).
var ErrNotQuiescent = errors.New("runtime: live run quiesced where the model still has enabled steps")

// RefineReport is the outcome of one successful refinement check.
type RefineReport struct {
	// ModelStates and ModelEdges size the explored reference graph.
	ModelStates int
	ModelEdges  int
	// TraceLen is the number of model steps replayed.
	TraceLen int
	// Ends is the number of model states consistent with the full
	// observation; TerminalEnd reports whether one of them is terminal.
	Ends        int
	TerminalEnd bool
}

// ExploreModel explores w's reference model once, for reuse across the
// seeds of a sweep. It returns ErrNoModel if the workload has no model at
// this scale.
func ExploreModel(w Workload) (*core.Graph[string], error) {
	g, err := w.Model()
	if err != nil {
		return nil, fmt.Errorf("runtime: exploring %q model: %w", w.Name(), err)
	}
	if g == nil {
		return nil, ErrNoModel
	}
	return g, nil
}

// Refine replays a live run into the explored model and checks the
// conformance obligations:
//
//  1. Embedding: the observed model steps must trace a path in g from an
//     initial state (ErrNotEmbedded otherwise, with the failing event).
//  2. Quiescence: if the run drained its queue (Quiesced) without crash
//     injections and without hitting the budget, some model state
//     consistent with the observation must be terminal — a quiet
//     implementation under a still-enabled model is a liveness bug
//     (ErrNotQuiescent). Crash injections waive this: starvation is not
//     modeled, so a crashed run may legitimately idle early.
//  3. Verdict agreement: the workload's own Check must accept the live
//     verdict against the consistent end states (election uniqueness,
//     delivery counts, agreement, mutual exclusion).
//
// The workload w must be the same instance that produced res: Check reads
// the verdict state its spawned procs accumulated.
func Refine(w Workload, res *Result, g *core.Graph[string]) (*RefineReport, error) {
	if g == nil {
		return nil, ErrNoModel
	}
	emb := g.EmbedTrace(res.Trace)
	if !emb.Ok {
		ev := res.Trace[emb.FailAt]
		return nil, fmt.Errorf("%w: event %d/%d %q (actor %d) is not enabled in any of the %d model states consistent with the prefix",
			ErrNotEmbedded, emb.FailAt+1, len(res.Trace), ev.Label, ev.Actor, len(emb.Frontier))
	}
	rep := &RefineReport{
		ModelStates: g.Len(), ModelEdges: g.NumEdges(),
		TraceLen: len(res.Trace), Ends: len(emb.Ends),
	}
	for _, e := range emb.Ends {
		if g.IsTerminal(e) {
			rep.TerminalEnd = true
			break
		}
	}
	if res.Quiesced && res.Crashes == 0 && !res.Budget && !rep.TerminalEnd {
		return nil, fmt.Errorf("%w: after %d events every consistent model state still has enabled steps",
			ErrNotQuiescent, res.Events)
	}
	if err := w.Check(res, g, emb.Ends); err != nil {
		return nil, fmt.Errorf("runtime: verdict disagreement for %q: %w", w.Name(), err)
	}
	return rep, nil
}
