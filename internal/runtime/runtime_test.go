package runtime

import (
	"bytes"
	"fmt"
	gort "runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// toy is a minimal workload for exercising the scheduler mechanics: each
// process launches one token with a TTL to its clockwise neighbor; a
// delivered token with positive TTL is forwarded with TTL-1, a dead token
// is swallowed. It supports every fault and has no model.
type toy struct {
	n, ttl   int
	faults   Faults
	guardKey string // when set, each proc also arms a guarded local
}

type toyToken struct{ ttl int }

func (t *toy) Name() string  { return "toy" }
func (t *toy) NumProcs() int { return t.n }
func (t *toy) Supports() Faults {
	if t.faults != 0 {
		return t.faults
	}
	return FaultDelay | FaultDrop | FaultDup | FaultCrash
}

func (t *toy) Spawn(int64) []Proc {
	out := make([]Proc, t.n)
	for p := range out {
		out[p] = &toyProc{w: t, p: p}
	}
	return out
}

func (t *toy) Model() (*core.Graph[string], error) { return nil, nil }

func (t *toy) Check(*Result, *core.Graph[string], []int) error { return nil }

func (t *toy) DropLabel(Action) (string, int) { return "drop tok", core.EnvironmentActor }

// Guard blocks the guarded local while any delivery is pending.
func (t *toy) Guard(_ Action, pend []Action) bool {
	for _, a := range pend {
		if a.Kind == ActDeliver {
			return false
		}
	}
	return true
}

type toyProc struct {
	w      *toy
	p      int
	locals int
}

func (pr *toyProc) Start() []Action {
	out := []Action{{
		Kind: ActDeliver, From: pr.p, To: (pr.p + 1) % pr.w.n,
		Payload: toyToken{ttl: pr.w.ttl},
	}}
	if pr.w.guardKey != "" {
		out = append(out, Action{Kind: ActLocal, To: pr.p, Key: pr.w.guardKey})
	}
	return out
}

func (pr *toyProc) Handle(a Action) Outcome {
	if a.Kind == ActLocal {
		pr.locals++
		return Outcome{Label: fmt.Sprintf("local p%d", pr.p), Actor: pr.p}
	}
	tok := a.Payload.(toyToken)
	out := Outcome{Label: fmt.Sprintf("tok ttl%d at p%d", tok.ttl, pr.p), Actor: pr.p}
	if tok.ttl > 0 {
		out.Effects = []Action{{
			Kind: ActDeliver, To: (pr.p + 1) % pr.w.n,
			Payload: toyToken{ttl: tok.ttl - 1},
		}}
	}
	return out
}

func TestRunDeterministicDigest(t *testing.T) {
	w := &toy{n: 5, ttl: 20}
	opts := Options{Seed: 42, Delay: 3, Drop: 0.1, Dup: 0.1, MaxEvents: 4096}
	a, err := Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(&toy{n: 5, ttl: 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("same seed, different digests:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("same seed, different trace lengths %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("same seed, traces diverge at %d: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	opts.Seed = 43
	c, err := Run(&toy{n: 5, ttl: 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Error("different seeds produced identical digests")
	}
}

func TestRunDigestStableAcrossGOMAXPROCS(t *testing.T) {
	opts := Options{Seed: 7, Delay: 2, Drop: 0.15, Dup: 0.1, MaxEvents: 4096}
	run := func() string {
		res, err := Run(&toy{n: 6, ttl: 30}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest
	}
	old := gort.GOMAXPROCS(1)
	d1 := run()
	gort.GOMAXPROCS(8)
	d8 := run()
	gort.GOMAXPROCS(old)
	if d1 != d8 {
		t.Errorf("digest differs across GOMAXPROCS:\n  1: %s\n  8: %s", d1, d8)
	}
}

func TestRunQuiesceAndCounters(t *testing.T) {
	res, err := Run(&toy{n: 4, ttl: 5}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiesced || res.Stopped || res.Stalled || res.Budget {
		t.Errorf("want clean quiescence, got %+v", res)
	}
	// 4 tokens, each delivered ttl+1 = 6 times.
	if res.Deliveries != 24 || res.Events != 24 || res.Pending != 0 {
		t.Errorf("deliveries=%d events=%d pending=%d, want 24/24/0", res.Deliveries, res.Events, res.Pending)
	}
	if len(res.Trace) != res.Deliveries {
		t.Errorf("trace has %d events, want %d", len(res.Trace), res.Deliveries)
	}
}

func TestRunDropAll(t *testing.T) {
	res, err := Run(&toy{n: 3, ttl: 9}, Options{Seed: 2, Drop: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiesced || res.Drops != 3 || res.Deliveries != 0 {
		t.Errorf("drop=1.0: got drops=%d deliveries=%d quiesced=%v, want 3/0/true", res.Drops, res.Deliveries, res.Quiesced)
	}
	for _, ev := range res.Trace {
		if ev.Label != "drop tok" {
			t.Fatalf("unexpected trace label %q", ev.Label)
		}
	}
}

func TestRunBudget(t *testing.T) {
	// dup=1 regenerates a copy of every delivery: the queue never drains.
	res, err := Run(&toy{n: 3, ttl: 2}, Options{Seed: 3, Dup: 1.0, MaxEvents: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Budget || res.Quiesced {
		t.Errorf("want budget exhaustion, got %+v", res)
	}
	if res.Dups == 0 || res.Pending == 0 {
		t.Errorf("want dups and pending actions, got dups=%d pending=%d", res.Dups, res.Pending)
	}
	if res.Events < 200 {
		t.Errorf("budget end with %d < 200 events", res.Events)
	}
}

func TestRunCrashRestart(t *testing.T) {
	res, err := Run(&toy{n: 4, ttl: 100}, Options{Seed: 5, Crash: 1.0, RestartAfter: 10, MaxEvents: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Errorf("crash=1.0 over 4 procs: got %d crashes", res.Crashes)
	}
	if res.Restarts == 0 {
		t.Error("restart-after set but no restarts recorded")
	}
	if res.Stalled {
		t.Error("restarts available, run should not stall")
	}
}

func TestRunCrashStall(t *testing.T) {
	// Everyone crashes, nobody restarts: pending deliveries freeze forever.
	res, err := Run(&toy{n: 3, ttl: 50}, Options{Seed: 11, Crash: 1.0, MaxEvents: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || !res.Stalled {
		t.Errorf("want crashes and a stall, got %+v", res)
	}
	if res.Pending == 0 {
		t.Error("stall with an empty queue")
	}
}

func TestRunGuardHoldsLocalsBack(t *testing.T) {
	// The guard blocks the local while any delivery is pending, so every
	// local step must appear after the last delivery in the trace.
	res, err := Run(&toy{n: 3, ttl: 4, guardKey: "g"}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalSteps != 3 {
		t.Fatalf("want 3 local steps, got %d", res.LocalSteps)
	}
	lastDeliver, firstLocal := -1, -1
	for i, ev := range res.Trace {
		if strings.HasPrefix(ev.Label, "tok ") {
			lastDeliver = i
		} else if firstLocal < 0 {
			firstLocal = i
		}
	}
	if firstLocal >= 0 && firstLocal < lastDeliver {
		t.Errorf("guarded local at %d ran before delivery at %d:\n%v", firstLocal, lastDeliver, res.Trace)
	}
}

func TestRunOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Workload
		opts Options
		want string
	}{
		{"drop unsupported", &toy{n: 2, ttl: 1, faults: FaultDelay}, Options{Drop: 0.5}, "does not support the drop fault"},
		{"dup unsupported", &toy{n: 2, ttl: 1, faults: FaultDelay}, Options{Dup: 0.5}, "does not support the dup fault"},
		{"crash unsupported", &toy{n: 2, ttl: 1, faults: FaultDelay}, Options{Crash: 0.5}, "does not support the crash fault"},
		{"delay unsupported", &toy{n: 2, ttl: 1, faults: FaultDrop}, Options{Delay: 2}, "does not support the delay fault"},
		{"drop too big", &toy{n: 2, ttl: 1}, Options{Drop: 1.5}, "outside [0,1]"},
		{"dup negative", &toy{n: 2, ttl: 1}, Options{Dup: -0.1}, "outside [0,1]"},
		{"negative delay", &toy{n: 2, ttl: 1}, Options{Delay: -1}, "negative delay"},
		{"no dropper", &noDropper{}, Options{Drop: 0.5}, "implements no Dropper"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.w, tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// noDropper claims drop support but implements no Dropper.
type noDropper struct{}

func (*noDropper) Name() string                                    { return "no-dropper" }
func (*noDropper) NumProcs() int                                   { return 1 }
func (*noDropper) Supports() Faults                                { return FaultDrop }
func (*noDropper) Spawn(int64) []Proc                              { return nil }
func (*noDropper) Model() (*core.Graph[string], error)             { return nil, nil }
func (*noDropper) Check(*Result, *core.Graph[string], []int) error { return nil }

func TestRunTraceWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := obs.NewTraceWriter(&buf, obs.NewManifest("runtime-test"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&toy{n: 4, ttl: 10}, Options{Seed: 13, Delay: 2, Drop: 0.2, Dup: 0.1, Sink: tw})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Digest() != res.Digest {
		t.Errorf("trace digest %s != result digest %s", tw.Digest(), res.Digest)
	}
	sum, err := obs.ValidateTrace(&buf)
	if err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	if sum.RTRuns != 1 || sum.RTEvents != res.Events {
		t.Errorf("validator saw %d rt runs / %d rt events, want 1 / %d", sum.RTRuns, sum.RTEvents, res.Events)
	}
}

func TestRunBatchDistinctDestinations(t *testing.T) {
	// Batch larger than the process count still works; a BatchLimiter of 1
	// serializes everything.
	res, err := Run(&limited{toy{n: 3, ttl: 6}}, Options{Seed: 17, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiesced {
		t.Errorf("want quiescence, got %+v", res)
	}
}

// limited wraps toy with MaxBatch 1.
type limited struct{ toy }

func (l *limited) Spawn(seed int64) []Proc { return l.toy.Spawn(seed) }
func (l *limited) MaxBatch() int           { return 1 }
