package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMaxEvents bounds a run when Options.MaxEvents is zero.
const DefaultMaxEvents = 1 << 20

// DefaultBatch is the concurrent dispatch width when Options.Batch is
// zero. It is a constant, never derived from GOMAXPROCS: batch
// composition shapes the adversary's RNG stream and therefore the trace.
const DefaultBatch = 16

// Options configure one adversarial run. The determinism contract: a
// fixed (Workload, Options) pair produces a byte-identical rt_event
// stream — and therefore Result.Digest — at any GOMAXPROCS. All
// randomness lives in a single rand.Rand owned by the scheduler goroutine
// (plus per-process RNGs derived from Seed that see a deterministic
// action sequence), and every scheduling decision is made before the
// batch is dispatched to the process goroutines.
type Options struct {
	// Seed drives the adversary and every process RNG.
	Seed int64
	// MaxEvents is the scheduling budget (0 = DefaultMaxEvents). The run
	// may overshoot by at most one batch: budget is checked at batch
	// boundaries so a batch's events are never split.
	MaxEvents int
	// Batch is the concurrent dispatch width (0 = DefaultBatch, capped by
	// the workload's BatchLimiter).
	Batch int
	// Delay is the maximum per-action scheduling skew, in scheduling
	// rounds: each enqueued action is due rng.Intn(Delay+1) rounds in the
	// future. Requires FaultDelay when positive.
	Delay int
	// Drop and Dup are per-delivery loss and duplication probabilities.
	// They require FaultDrop (plus a Dropper) and FaultDup respectively.
	Drop float64
	Dup  float64
	// Crash is the per-process probability of a fail-stop crash at a
	// seeded point in the run; RestartAfter, when positive, revives a
	// crashed process after that many events. Requires FaultCrash.
	Crash        float64
	RestartAfter int
	// Sink, when non-nil, additionally receives the run's rt_start /
	// rt_event / rt_end stream (a Digest sink is always attached).
	Sink obs.Sink
}

// Result reports one live run.
type Result struct {
	// Workload, Procs, Seed echo the configuration.
	Workload string
	Procs    int
	Seed     int64
	// Trace is the sequence of model steps observed (rt events with
	// non-empty labels, in recorded order) — the input to Refine.
	Trace core.Trace
	// Events counts every scheduled action; the remaining counters split
	// it by kind.
	Events     int
	Deliveries int
	LocalSteps int
	Drops      int
	Dups       int
	Crashes    int
	Restarts   int
	// Pending is the number of actions still queued when the run ended;
	// Halted the number of processes that reached terminal protocol state.
	Pending int
	Halted  int
	// Exactly one of the end conditions holds.
	Stopped  bool
	Quiesced bool
	Stalled  bool
	Budget   bool
	// Digest is the deterministic trace digest (obs.Digest over the rt
	// stream): identical seeds yield identical digests at any GOMAXPROCS.
	Digest string
	// BatchLat is the concurrent-dispatch latency histogram: one
	// observation per scheduler round, dispatch fan-out to last reply.
	// Pure timing (machine-dependent), excluded from Digest.
	BatchLat obs.HistSnap
}

// pending is one queued action with its scheduling metadata.
type pending struct {
	a        Action
	seq      uint64
	due      int
	consumed bool
}

// Run executes one adversarial run of w. It spawns one goroutine per
// process and drives them with a deterministic scheduler: each round the
// adversary picks a batch of due actions targeting distinct processes,
// rolls its drop/dup dice, dispatches the survivors concurrently, then
// merges outcomes and effects in pick order.
func Run(w Workload, opts Options) (*Result, error) {
	n := w.NumProcs()
	if n <= 0 {
		return nil, fmt.Errorf("runtime: workload %q has %d processes", w.Name(), n)
	}
	if err := validate(w, &opts); err != nil {
		return nil, err
	}
	batch := opts.Batch
	if bl, ok := w.(BatchLimiter); ok && batch > bl.MaxBatch() {
		batch = bl.MaxBatch()
	}
	guarded, _ := w.(Guarded)
	dropper, _ := w.(Dropper)

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{Workload: w.Name(), Procs: n, Seed: opts.Seed}
	var batchLat obs.Hist

	dig := obs.NewDigest()
	var sink obs.Sink = dig
	if opts.Sink != nil {
		sink = obs.MultiSink{dig, opts.Sink}
	}
	sink.Publish(obs.Event{Kind: obs.KindRTStart, RTConfig: &obs.RuntimeConfig{
		Workload: w.Name(), Procs: n, Seed: opts.Seed,
		MaxEvents: opts.MaxEvents, Batch: batch,
		Drop: opts.Drop, Dup: opts.Dup, Delay: opts.Delay,
		Crash: opts.Crash, RestartAfter: opts.RestartAfter,
	}})

	// Pre-draw the crash schedule: each process either never crashes or
	// crashes once the event counter passes a seeded threshold.
	crashAt := make([]int, n)
	restartAt := make([]int, n)
	for p := range crashAt {
		crashAt[p], restartAt[p] = -1, -1
	}
	if opts.Crash > 0 {
		for p := 0; p < n; p++ {
			if rng.Float64() < opts.Crash {
				crashAt[p] = 1 + rng.Intn(opts.MaxEvents)
			}
		}
	}

	var (
		queue   []pending
		nextSeq uint64
		clock   int
	)
	enqueue := func(a Action) error {
		if a.To < 0 || a.To >= n {
			return fmt.Errorf("runtime: action targets process %d outside [0,%d)", a.To, n)
		}
		if a.Kind == ActLocal {
			for i := range queue {
				if !queue[i].consumed && queue[i].a.Kind == ActLocal &&
					queue[i].a.To == a.To && queue[i].a.Key == a.Key {
					return nil // already armed
				}
			}
			a.From = a.To
		}
		due := clock
		if opts.Delay > 0 {
			due += rng.Intn(opts.Delay + 1)
		}
		queue = append(queue, pending{a: a, seq: nextSeq, due: due})
		nextSeq++
		return nil
	}

	procs := w.Spawn(opts.Seed)
	if len(procs) != n {
		return nil, fmt.Errorf("runtime: Spawn returned %d procs, want %d", len(procs), n)
	}
	for p, pr := range procs {
		for _, a := range pr.Start() {
			if a.Kind == ActDeliver && a.From != core.EnvironmentActor && a.From != p {
				return nil, fmt.Errorf("runtime: p%d's initial send claims sender %d", p, a.From)
			}
			if err := enqueue(a); err != nil {
				return nil, err
			}
		}
	}

	// One goroutine per process; requests arrive over its channel, each
	// carrying a private reply channel. Channel sends/receives are the
	// happens-before edges that order all cross-goroutine state access.
	type request struct {
		a     Action
		reply chan Outcome
	}
	reqs := make([]chan request, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		reqs[p] = make(chan request)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := range reqs[p] {
				r.reply <- procs[p].Handle(r.a)
			}
		}(p)
	}
	stopProcs := func() {
		for _, c := range reqs {
			close(c)
		}
		wg.Wait()
	}

	crashed := make([]bool, n)
	halted := make([]bool, n)
	record := func(kind string, actor, from, to int, label string) {
		res.Events++
		sink.Publish(obs.Event{Kind: obs.KindRTEvent, RT: &obs.RuntimeEvent{
			Kind: kind, Event: res.Events, Actor: actor, From: from, To: to, Label: label,
		}})
		if label != "" {
			res.Trace = append(res.Trace, core.TraceEvent{Label: label, Actor: actor})
		}
	}
	disarm := func(p int) {
		for i := range queue {
			if !queue[i].consumed && queue[i].a.Kind == ActLocal && queue[i].a.To == p {
				queue[i].consumed = true
			}
		}
	}

	stopped := false
	var runErr error
loop:
	for {
		if res.Events >= opts.MaxEvents {
			res.Budget = true
			break
		}
		// Fire due crash/restart injections at the batch boundary.
		for p := 0; p < n; p++ {
			switch {
			case crashAt[p] >= 0 && res.Events >= crashAt[p] && !crashed[p]:
				crashAt[p] = -1
				crashed[p] = true
				if opts.RestartAfter > 0 {
					restartAt[p] = res.Events + opts.RestartAfter
				}
				record(obs.RTCrash, core.EnvironmentActor, core.EnvironmentActor, p, "")
				res.Crashes++
			case restartAt[p] >= 0 && res.Events >= restartAt[p] && crashed[p]:
				restartAt[p] = -1
				crashed[p] = false
				record(obs.RTRestart, core.EnvironmentActor, core.EnvironmentActor, p, "")
				res.Restarts++
			}
		}

		// Candidate selection: due, destination alive, guard satisfied.
		var snapshot []Action
		if guarded != nil {
			for i := range queue {
				if !queue[i].consumed {
					snapshot = append(snapshot, queue[i].a)
				}
			}
		}
		var cands []int
		live := 0
		for i := range queue {
			pd := &queue[i]
			if pd.consumed || crashed[pd.a.To] {
				continue
			}
			live++
			if pd.due > clock {
				continue
			}
			if guarded != nil && pd.a.Kind == ActLocal && !guarded.Guard(pd.a, snapshot) {
				continue
			}
			cands = append(cands, i)
		}
		if len(cands) == 0 {
			total := 0
			minDue := -1
			for i := range queue {
				if queue[i].consumed {
					continue
				}
				total++
				if !crashed[queue[i].a.To] && queue[i].due > clock &&
					(minDue < 0 || queue[i].due < minDue) {
					minDue = queue[i].due
				}
			}
			if total == 0 {
				res.Quiesced = true
				break
			}
			if minDue >= 0 {
				clock = minDue // fast-forward past the delay gap
				continue
			}
			// Everything schedulable is frozen under a crash. Force the
			// earliest scheduled restart rather than deadlocking on an
			// event counter that can no longer advance.
			rp := -1
			for p := 0; p < n; p++ {
				if crashed[p] && restartAt[p] >= 0 && (rp < 0 || restartAt[p] < restartAt[rp]) {
					rp = p
				}
			}
			if rp < 0 {
				res.Stalled = true
				break
			}
			restartAt[rp] = -1
			crashed[rp] = false
			record(obs.RTRestart, core.EnvironmentActor, core.EnvironmentActor, rp, "")
			res.Restarts++
			continue
		}

		// Adversarial pick: up to batch actions with distinct destinations,
		// drawn uniformly without replacement.
		var picks []int
		taken := make(map[int]bool, batch)
		for len(picks) < batch && len(cands) > 0 {
			k := rng.Intn(len(cands))
			c := cands[k]
			cands[k] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
			if taken[queue[c].a.To] {
				continue
			}
			taken[queue[c].a.To] = true
			picks = append(picks, c)
		}

		// Adversary dice, in pick order: drop removes the delivery, dup
		// re-enqueues a copy under a fresh delay.
		var exec []int
		for _, c := range picks {
			a := queue[c].a
			if a.Kind == ActDeliver {
				if opts.Drop > 0 && rng.Float64() < opts.Drop {
					lbl, actor := dropper.DropLabel(a)
					queue[c].consumed = true
					record(obs.RTDrop, actor, a.From, a.To, lbl)
					res.Drops++
					continue
				}
				if opts.Dup > 0 && rng.Float64() < opts.Dup {
					record(obs.RTDup, core.EnvironmentActor, a.From, a.To, "")
					res.Dups++
					if err := enqueue(a); err != nil {
						runErr = err
						break loop
					}
				}
			}
			exec = append(exec, c)
		}

		// Concurrent dispatch: every surviving pick targets a distinct
		// process, so the batch really runs in parallel. Round latency
		// (fan-out to last reply) feeds the BatchLat histogram — two clock
		// reads per round, never per action.
		batchT := time.Now()
		replies := make([]chan Outcome, len(exec))
		for i, c := range exec {
			replies[i] = make(chan Outcome, 1)
			reqs[queue[c].a.To] <- request{a: queue[c].a, reply: replies[i]}
		}
		outs := make([]Outcome, len(exec))
		for i := range exec {
			outs[i] = <-replies[i]
		}
		if len(exec) > 0 {
			batchLat.Observe(int64(time.Since(batchT)))
		}

		// Record in pick order, any Stop outcome last: a batch's steps
		// commuted live, so any serialization embeds, and putting the
		// terminal model step last keeps its batch-mates on the path.
		order := make([]int, 0, len(exec))
		for i := range exec {
			if !outs[i].Stop {
				order = append(order, i)
			}
		}
		for i := range exec {
			if outs[i].Stop {
				order = append(order, i)
			}
		}
		for _, i := range order {
			c, out := exec[i], outs[i]
			a := queue[c].a
			queue[c].consumed = true
			kind := obs.RTDeliver
			if a.Kind == ActLocal {
				kind = obs.RTLocal
				res.LocalSteps++
			} else {
				res.Deliveries++
			}
			record(kind, out.Actor, a.From, a.To, out.Label)
			for _, eff := range out.Effects {
				if eff.Kind == ActDeliver && eff.From != core.EnvironmentActor {
					eff.From = a.To
				}
				if err := enqueue(eff); err != nil {
					runErr = err
					break loop
				}
			}
			if out.Halt && !halted[a.To] {
				halted[a.To] = true
				res.Halted++
				disarm(a.To)
			}
			if out.Stop {
				stopped = true
			}
		}
		if stopped {
			res.Stopped = true
			break
		}

		// Compact consumed entries and advance the scheduling clock.
		kept := queue[:0]
		for _, pd := range queue {
			if !pd.consumed {
				kept = append(kept, pd)
			}
		}
		queue = kept
		clock++
	}

	stopProcs()
	if runErr != nil {
		return nil, runErr
	}
	for _, pd := range queue {
		if !pd.consumed {
			res.Pending++
		}
	}
	res.BatchLat = batchLat.Snapshot()
	summary := &obs.RuntimeSummary{
		Events: res.Events, Deliveries: res.Deliveries, LocalSteps: res.LocalSteps,
		Drops: res.Drops, Dups: res.Dups, Crashes: res.Crashes, Restarts: res.Restarts,
		Pending: res.Pending, Halted: res.Halted,
		Stopped: res.Stopped, Quiesced: res.Quiesced, Stalled: res.Stalled, Budget: res.Budget,
	}
	if res.BatchLat.Count > 0 {
		bl := res.BatchLat
		summary.BatchLat = &bl
	}
	sink.Publish(obs.Event{Kind: obs.KindRTEnd, RTSummary: summary})
	res.Digest = dig.Sum()
	return res, nil
}

// validate checks the options against the workload's declared fault
// support and normalizes defaults in place.
func validate(w Workload, opts *Options) error {
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = DefaultMaxEvents
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", opts.Drop}, {"dup", opts.Dup}, {"crash", opts.Crash}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("runtime: %s probability %g outside [0,1]", p.name, p.v)
		}
	}
	if opts.Delay < 0 || opts.RestartAfter < 0 {
		return fmt.Errorf("runtime: negative delay/restart-after")
	}
	sup := w.Supports()
	check := func(on bool, f Faults, name string) error {
		if on && sup&f == 0 {
			return fmt.Errorf("runtime: workload %q does not support the %s fault", w.Name(), name)
		}
		return nil
	}
	for _, c := range []struct {
		on   bool
		f    Faults
		name string
	}{
		{opts.Delay > 0, FaultDelay, "delay"},
		{opts.Drop > 0, FaultDrop, "drop"},
		{opts.Dup > 0, FaultDup, "dup"},
		{opts.Crash > 0, FaultCrash, "crash"},
	} {
		if err := check(c.on, c.f, c.name); err != nil {
			return err
		}
	}
	if _, ok := w.(Dropper); opts.Drop > 0 && !ok {
		return fmt.Errorf("runtime: workload %q supports drop but implements no Dropper", w.Name())
	}
	return nil
}
