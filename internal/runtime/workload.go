// Package runtime is the live half of the paper's unified-model story
// (§3.6): a goroutine-per-process execution harness that runs the same
// protocols the model checker explores exhaustively — ring election,
// alternating-bit transfer, Ben-Or consensus, shared-memory mutual
// exclusion — as real concurrent systems under a seeded adversarial
// scheduler. Message delay, loss, duplication and process crash/restart
// are the fault axes the impossibility arguments quantify over ("Time is
// not a Healer"); here they are injectable knobs, all replayable from a
// single seed.
//
// Every run is captured through internal/obs as a versioned trace, and
// the refinement oracle (Refine) replays the observed execution into the
// explored state space: each live run must embed as a path in the model's
// Graph, and the safety verdicts — election uniqueness, exactly-once
// delivery, agreement, mutual exclusion — must agree between the live run
// and the engine's verdict. The telemetry layer thereby becomes a
// conformance oracle: a protocol implementation that diverges from its
// model (a missing retransmission, a self-electing forwarder) is caught
// because its trace falls off the explored graph.
package runtime

import (
	"repro/internal/core"
)

// Faults is the bitmask of adversary knobs a workload supports. Run
// rejects options that enable a fault the workload's model cannot
// express: an unmodeled fault would make live traces unembeddable by
// construction, which is a configuration error, not a conformance bug.
type Faults uint8

const (
	// FaultDelay: per-action scheduling delay. Sound for every
	// asynchronous model (delay is indistinguishable from adversarial
	// scheduling), so all workloads support it.
	FaultDelay Faults = 1 << iota
	// FaultDrop: per-message loss. Requires the model to have drop edges
	// (the workload must implement Dropper).
	FaultDrop
	// FaultDup: per-message duplication. Requires the model to tolerate
	// re-delivery of an already-delivered message.
	FaultDup
	// FaultCrash: fail-stop crash injection, optionally followed by
	// restart. A crashed process is starved, never scheduled — which an
	// asynchronous model cannot distinguish from slowness, so traces stay
	// embeddable; only the quiescence obligation is waived (see Refine).
	FaultCrash
)

// ActionKind discriminates scheduled actions.
type ActionKind int

const (
	// ActDeliver hands a message from one process to another. Deliveries
	// are what the adversary can drop, duplicate, and delay.
	ActDeliver ActionKind = iota
	// ActLocal fires a local protocol step a process has armed (a
	// retransmission timer, a spin-loop step). Local actions are one-shot:
	// firing consumes the armed action, and the outcome re-arms it if the
	// protocol wants it persistent. At most one local action per (process,
	// Key) is armed at a time — re-arming an already-armed key is a no-op.
	ActLocal
)

// Action is one schedulable unit: a message in flight or an armed local
// step. Actions are created by Proc outcomes (and Start) and scheduled by
// the adversary.
type Action struct {
	Kind ActionKind
	// From is the sending process for deliveries (or core.EnvironmentActor
	// for environment-originated ones); ignored for local actions.
	From int
	// To is the process the action is scheduled on.
	To int
	// Key dedups armed local actions per process; ignored for deliveries.
	Key string
	// Payload is the workload-private message or timer content. The
	// scheduler never inspects it.
	Payload any
}

// Outcome is a process's response to one scheduled action.
type Outcome struct {
	// Label is the model edge this step corresponds to — it must match a
	// Graph edge label byte for byte, or be empty for an internal stutter
	// that is not a model step (stutters are recorded in the rt trace but
	// skipped by refinement).
	Label string
	// Actor is the model edge's actor (usually the process itself;
	// core.EnvironmentActor for environment-attributed steps).
	Actor int
	// Effects are the actions this step causes: messages to send, local
	// actions to (re-)arm. They are enqueued in order under the adversary's
	// delay knob.
	Effects []Action
	// Halt reports that this process reached a terminal protocol state: its
	// armed local actions (including any just re-armed by Effects) are
	// cleared. Deliveries to a halted process continue — in an asynchronous
	// model, in-flight messages still arrive — so Handle must keep
	// returning correct labels after Halt.
	Halt bool
	// Stop reports that the run's goal is reached (a leader elected, a
	// transfer acknowledged): the run ends after this batch. Within the
	// batch the stopping event is recorded last — any serialization of a
	// batch's concurrently executed steps is a valid linearization, and
	// ordering the terminal step last keeps its batch-mates embeddable.
	Stop bool
}

// Proc is one live process: a state machine driven entirely by scheduled
// actions. A Proc's state is owned by its goroutine; Start is called
// before the goroutine exists, and nothing else may touch the state until
// Run has returned.
type Proc interface {
	// Start returns the process's initial actions (initial message sends,
	// armed timers). Start steps are part of the initial configuration,
	// not model edges, so they carry no labels.
	Start() []Action
	// Handle executes one scheduled action and returns its outcome. It is
	// called from the process's own goroutine; concurrent calls never
	// target the same process.
	Handle(a Action) Outcome
}

// Workload binds a live implementation to its reference model. One
// Workload instance backs one Run: Spawn's procs accumulate the live
// verdict state that Check inspects afterwards.
type Workload interface {
	// Name identifies the workload in traces and reports.
	Name() string
	// NumProcs returns the number of live processes.
	NumProcs() int
	// Supports returns the fault knobs this workload's model can express.
	Supports() Faults
	// Spawn creates the live processes (exactly NumProcs of them), seeded
	// deterministically: any randomness a process uses must derive from
	// seed and its index alone.
	Spawn(seed int64) []Proc
	// Model explores the reference state space for refinement. A nil graph
	// with nil error means the workload has no model at this scale
	// (live-only sweeps); Refine then returns ErrNoModel.
	Model() (*core.Graph[string], error)
	// Check compares the live run's verdict against the model states the
	// trace can end in (the Ends of a successful embedding): election
	// uniqueness, delivery counts, agreement, mutual exclusion. Called
	// only after Run has returned and the trace has embedded.
	Check(res *Result, g *core.Graph[string], ends []int) error
}

// Guarded is implemented by workloads whose armed local actions have
// enabling conditions the scheduler must respect — e.g. the alternating
// bit sender may only (re)transmit into an empty channel, which live
// means "no data packet currently in flight". Guard reports whether local
// action a is currently enabled given the full pending action set; a
// blocked action stays armed and is re-polled every scheduling round.
// Guard is called from the scheduler goroutine and must not mutate
// process state.
type Guarded interface {
	Guard(a Action, pending []Action) bool
}

// Dropper is implemented by workloads whose model has explicit message
// loss edges; it is required to enable the drop knob. DropLabel returns
// the model edge (label, actor) for the adversary dropping delivery a.
type Dropper interface {
	DropLabel(a Action) (label string, actor int)
}

// BatchLimiter is implemented by workloads that bound the concurrent
// dispatch width — shared-memory algorithms return 1, serializing atomic
// accesses so the scheduler's channel handoffs are the happens-before
// edges ordering every access to the genuinely shared variables.
type BatchLimiter interface {
	MaxBatch() int
}
