package runtime_test

import (
	"errors"
	"testing"

	"repro/internal/consensus"
	"repro/internal/datalink"
	"repro/internal/ring"
	"repro/internal/runtime"
	"repro/internal/sharedmem"
)

// sweep runs w under nSeeds adversary seeds and refines every run against
// the explored model, failing on any embedding or verdict disagreement.
func sweep(t *testing.T, w runtime.Workload, base runtime.Options, nSeeds int) {
	t.Helper()
	g, err := runtime.ExploreModel(w)
	if err != nil {
		t.Fatalf("exploring model: %v", err)
	}
	for seed := 0; seed < nSeeds; seed++ {
		opts := base
		opts.Seed = int64(seed)
		res, err := runtime.Run(w, opts)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		rep, err := runtime.Refine(w, res, g)
		if err != nil {
			t.Errorf("seed %d: refine: %v", seed, err)
			continue
		}
		if rep.TraceLen != len(res.Trace) || rep.Ends == 0 {
			t.Errorf("seed %d: degenerate report %+v", seed, rep)
		}
	}
}

func TestRefineLCRSweep(t *testing.T) {
	w, err := ring.NewLiveLCR([]int{3, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, w, runtime.Options{Delay: 3, MaxEvents: 4096}, 16)
}

func TestRefineLCRCrashSweep(t *testing.T) {
	w, err := ring.NewLiveLCR([]int{2, 4, 1, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, w, runtime.Options{Delay: 2, Crash: 0.3, RestartAfter: 5, MaxEvents: 4096}, 16)
}

func TestRefineABPSweep(t *testing.T) {
	w, err := datalink.NewLiveABP(3)
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, w, runtime.Options{Delay: 2, Drop: 0.3, MaxEvents: 4096}, 16)
}

func TestRefineABPCrashSweep(t *testing.T) {
	w, err := datalink.NewLiveABP(2)
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, w, runtime.Options{Delay: 2, Drop: 0.2, Crash: 0.4, RestartAfter: 8, MaxEvents: 2048}, 16)
}

func TestRefineBenOrSweep(t *testing.T) {
	w, err := consensus.NewLiveBenOr(3, 1, 1, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, w, runtime.Options{Delay: 3, MaxEvents: 4096}, 16)
}

func TestRefineBenOrUnanimousSweep(t *testing.T) {
	w, err := consensus.NewLiveBenOr(3, 1, 1, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, w, runtime.Options{Delay: 2, Crash: 0.25, RestartAfter: 6, MaxEvents: 4096}, 16)
}

func TestRefineMutexSweep(t *testing.T) {
	// Mutex processes step forever, so every run ends on budget; the
	// interesting obligations are embedding and the exact-final-state and
	// exclusion verdicts.
	sweep(t, sharedmem.NewLiveMutex(sharedmem.NewTicketLock(3)),
		runtime.Options{Delay: 2, MaxEvents: 400}, 16)
}

func TestRefineMutexCrashSweep(t *testing.T) {
	sweep(t, sharedmem.NewLiveMutex(sharedmem.NewPeterson2()),
		runtime.Options{Delay: 2, Crash: 0.3, RestartAfter: 10, MaxEvents: 400}, 16)
}

// TestBuggyLCRRejected is the oracle's negative control: a ring whose
// processes forward their own returning id instead of electing walks off
// the explored graph at the first delivery past the missed election.
func TestBuggyLCRRejected(t *testing.T) {
	w, err := ring.NewBuggyLiveLCR([]int{3, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := runtime.ExploreModel(w)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 16; seed++ {
		res, err := runtime.Run(w, runtime.Options{Seed: int64(seed), Delay: 2, MaxEvents: 4096})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		_, err = runtime.Refine(w, res, g)
		if !errors.Is(err, runtime.ErrNotEmbedded) {
			t.Errorf("seed %d: buggy LCR not rejected by embedding, got %v", seed, err)
		}
	}
}

// TestNoRetransmitABPRejected: a sender that never retransmits goes
// silent after the adversary's first data drop; the live run quiesces
// while every consistent model state still has "send data" enabled, and
// the quiescence rule rejects it.
func TestNoRetransmitABPRejected(t *testing.T) {
	w, err := datalink.NewNoRetransmitABP(3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := runtime.ExploreModel(w)
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for seed := 0; seed < 16; seed++ {
		res, err := runtime.Run(w, runtime.Options{Seed: int64(seed), Delay: 2, Drop: 0.4, MaxEvents: 4096})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		_, err = runtime.Refine(w, res, g)
		switch {
		case err == nil:
			// A lucky schedule where no data packet was dropped completes the
			// transfer legitimately.
			if res.Drops > 0 && !res.Stopped {
				t.Errorf("seed %d: %d drops, not stopped, yet refinement passed", seed, res.Drops)
			}
		case errors.Is(err, runtime.ErrNotQuiescent):
			caught++
		default:
			t.Errorf("seed %d: unexpected refinement error: %v", seed, err)
		}
	}
	if caught < 4 {
		t.Errorf("quiescence rule caught the silent sender in only %d/16 seeds", caught)
	}
}

// TestRefineNoModelScale: large configurations run live-only and the
// oracle reports ErrNoModel rather than guessing.
func TestRefineNoModelScale(t *testing.T) {
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = (i*37 + 11) % 1009
	}
	w, err := ring.NewLiveLCR(ids)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.ExploreModel(w); !errors.Is(err, runtime.ErrNoModel) {
		t.Fatalf("want ErrNoModel at n=100, got %v", err)
	}
	res, err := runtime.Run(w, runtime.Options{Seed: 99, Delay: 4, MaxEvents: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Errorf("live-only election did not complete: %+v", res)
	}
	if _, err := runtime.Refine(w, res, nil); !errors.Is(err, runtime.ErrNoModel) {
		t.Errorf("Refine with nil graph: want ErrNoModel, got %v", err)
	}
}

// TestRunDigestSeedSensitivity: distinct seeds on a real workload give
// distinct digests (the adversary is actually randomized), and repeated
// seeds reproduce them.
func TestRunDigestSeedSensitivity(t *testing.T) {
	w, err := datalink.NewLiveABP(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int64{}
	for seed := int64(0); seed < 8; seed++ {
		opts := runtime.Options{Seed: seed, Delay: 3, Drop: 0.25, MaxEvents: 4096}
		a, err := runtime.Run(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := runtime.Run(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest != b.Digest {
			t.Fatalf("seed %d not reproducible: %s vs %s", seed, a.Digest, b.Digest)
		}
		if prev, dup := seen[a.Digest]; dup {
			t.Errorf("seeds %d and %d share digest %s", prev, seed, a.Digest)
		}
		seen[a.Digest] = seed
	}
}
