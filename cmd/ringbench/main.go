// Command ringbench sweeps ring sizes and prints the message-complexity
// landscape of the §2.4 leader election algorithms: LCR worst/best case,
// Hirschberg–Sinclair, the variable-speeds counterexample algorithm, and
// Itai–Rodeh randomized election on anonymous rings — the series behind
// the Ω(n log n) lower bound discussion. It then exhaustively explores the
// asynchronous LCR state space for small rings, verifying the election
// invariant over every delivery schedule.
//
// Usage:
//
//	ringbench -max 256
//	ringbench -parallel 4 -stats   # multicore exploration with telemetry
//	ringbench -trace t.jsonl       # JSONL run trace of the async sweep
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
)

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/store"
)

func main() {
	os.Exit(run())
}

// run carries main's body so the deferred telemetry cleanup (trace flush,
// metrics-server shutdown) executes before the process exits.
func run() int {
	maxN := flag.Int("max", 128, "largest ring size (swept in powers of two from 8)")
	seed := flag.Int64("seed", 42, "seed for randomized election")
	parallelism := flag.Int("parallel", 0,
		"exploration worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	showStats := flag.Bool("stats", false, "print exploration engine telemetry for the async LCR sweep")
	usePOR := flag.Bool("por", false,
		"explore the async LCR sweep under ample-set partial-order reduction (disjoint-links independence); the election verdict is identical either way")
	verifyAliasing := flag.Int("verify-aliasing", 0,
		"debug falsifier: re-expand every Nth state over poisoned scratch buffers to catch expansions that retain emitted slices (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	progress := flag.Bool("progress", false, "stream live exploration progress lines to stderr")
	tracePath := flag.String("trace", "", "write a JSONL run trace of the async LCR sweep to this file (\"-\" for stdout); validate with `hundred trace-lint`")
	serveAddr := flag.String("serve", "", "serve live /metrics and /debug/pprof on this address (e.g. :8080) for the life of the run")
	snapshotEvery := flag.Duration("snapshot-every", 0,
		"timer-driven snapshot period for -progress/-trace/-serve (0 = 1s default, negative = barrier events only)")
	storeKind := flag.String("store", "mem",
		"visited-set backend for the async LCR sweep: mem | spill | bitstate (bitstate is lossy: the schedule check becomes \"no violation found\")")
	maxStoreBytes := flag.Int64("max-store-bytes", 0,
		"spill backend's resident-payload budget in bytes (0 = 256 MiB default)")
	sched := flag.String("sched", "",
		"exploration scheduler: barrier (default: per-level fork/join) | steal (persistent work-stealing pool); results are identical either way")
	flag.Parse()
	switch *sched {
	case "", "barrier", "steal":
	default:
		fmt.Fprintf(os.Stderr, "ringbench: unknown -sched %q (want barrier or steal)\n", *sched)
		return 2
	}
	storeCfg, err := store.ParseFlags(*storeKind, *maxStoreBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sink, obsCleanup, err := obs.SetupCLI(obs.CLIConfig{
		Tool: "ringbench", Progress: *progress, TracePath: *tracePath, ServeAddr: *serveAddr,
		Seed: *seed,
		Options: map[string]string{
			"max":      strconv.Itoa(*maxN),
			"parallel": strconv.Itoa(*parallelism),
			"por":      strconv.FormatBool(*usePOR),
			"store":    string(storeCfg.ResolvedKind()),
			"sched":    *sched,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer obsCleanup()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	fmt.Printf("%-6s %12s %12s %12s %14s %10s %12s\n",
		"n", "LCR worst", "LCR best", "HS", "var-speeds", "n log n", "Itai-Rodeh")
	rng := rand.New(rand.NewSource(*seed))
	for n := 8; n <= *maxN; n *= 2 {
		worst, err := ring.RunLCR(ring.DescendingIDs(n))
		exitOn(err)
		best, err := ring.RunLCR(ring.AscendingIDs(n))
		exitOn(err)
		hs, err := ring.RunHS(ring.DescendingIDs(n))
		exitOn(err)
		small := make([]int, n)
		for i := range small {
			small[i] = (i + 1) % n
		}
		vs, err := ring.RunVariableSpeeds(small)
		exitOn(err)
		ir, err := ring.RunItaiRodeh(n, n, rng, 1000)
		exitOn(err)
		fmt.Printf("%-6d %12d %12d %12d %14d %10.0f %12d\n",
			n, worst.Messages, best.Messages, hs.Messages, vs.Messages,
			float64(n)*math.Log2(float64(n)), ir.Messages)
	}

	fmt.Printf("\nasync LCR: every delivery schedule, worst-case ids\n")
	fmt.Printf("%-6s %10s %10s\n", "n", "states", "schedules OK")
	for n := 3; n <= 7; n++ {
		a, err := ring.NewAsyncLCR(ring.DescendingIDs(n))
		exitOn(err)
		var st engine.Stats
		opts := core.ExploreOptions{
			Parallelism: *parallelism, Sink: sink, SnapshotEvery: *snapshotEvery,
			Store: storeCfg, VerifyAliasing: *verifyAliasing, Sched: *sched,
		}
		if *showStats || storeCfg.ResolvedKind() != store.Mem {
			opts.Stats = &st
		}
		if *usePOR {
			opts.Independent = a.Independence()
			opts.VerifyPOR = 16
		}
		g, err := a.CheckElection(opts)
		exitOn(err)
		verdict := "yes"
		if st.Lossy {
			verdict = "none found (lossy)"
		}
		fmt.Printf("%-6d %10d %18s\n", n, g.Len(), verdict)
		if *showStats {
			fmt.Printf("       [engine] %s\n", st)
		}
		if line := st.StoreString(); line != "" {
			fmt.Printf("       [store]  %s\n", line)
		}
	}
	return 0
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
