// Command bivalence runs the FLP bivalence analyzer on one of the built-in
// asynchronous consensus protocols and prints the analysis: configuration
// counts, bivalent initial configurations, and the horn of the FLP theorem
// the protocol falls on (with witness executions).
//
// Usage:
//
//	bivalence -proto wait-all -n 3
//	bivalence -proto wait-quorum -n 3 -resilience 1
//	bivalence -proto adopt-swap -n 2 -resilience 0
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/flp"
)

func main() {
	proto := flag.String("proto", "adopt-swap", "protocol: wait-all | wait-quorum | adopt-swap")
	n := flag.Int("n", 2, "number of processes")
	resilience := flag.Int("resilience", 1, "number of crash events the adversary may inject")
	parallel := flag.Int("parallel", 0, "exploration worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	stats := flag.Bool("stats", false, "print exploration engine telemetry")
	usePOR := flag.Bool("por", false,
		"analyze under ample-set partial-order reduction (delivery independence + decision visibility); verdicts are identical, configuration counts shrink")
	flag.Parse()

	var p flp.Protocol
	switch *proto {
	case "wait-all":
		p = flp.NewWaitAll(*n)
	case "wait-quorum":
		p = flp.NewWaitQuorum(*n)
	case "adopt-swap":
		p = flp.NewAdoptSwap(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		os.Exit(2)
	}
	var st *engine.Stats
	if *stats {
		st = new(engine.Stats)
	}
	opts := flp.AnalyzeOptions{Resilience: resilience, Parallelism: *parallel, Stats: st}
	if *usePOR {
		opts.Independent = flp.DeliveryIndependence(p)
		opts.Visible = flp.DecisionVisibility(p)
		opts.VerifyPOR = 16
	}
	rep, err := flp.Analyze(p, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("protocol:            %s (n=%d, resilience=%d)\n", rep.Protocol, *n, *resilience)
	if st != nil {
		fmt.Printf("exploration:         %s\n", st)
	}
	fmt.Printf("configurations:      %d (%d transitions)\n", rep.States, rep.Edges)
	fmt.Printf("bivalent configs:    %d (bivalent initial: %v)\n", rep.BivalentConfigs, rep.HasBivalentInitial)
	fmt.Printf("decider config:      %v\n", rep.DeciderFound)
	fmt.Printf("verdict:             %s\n", flp.DescribeHorn(rep))
	if rep.AgreementViolated {
		fmt.Printf("\ndisagreement witness:\n%s\n", rep.AgreementWitness)
	}
	if rep.HasDeadlock {
		fmt.Printf("\nundecided deadlock witness:\n%s\n", rep.UndecidedDeadlock)
	}
	if rep.NondecidingLasso != nil {
		fmt.Printf("\nnon-deciding fair execution: prefix %d steps, then repeat forever:\n%s\n",
			len(rep.NondecidingLasso.Prefix), rep.NondecidingLasso.Cycle)
	}
}
