// Command bivalence runs the FLP bivalence analyzer on one of the built-in
// asynchronous consensus protocols and prints the analysis: configuration
// counts, bivalent initial configurations, and the horn of the FLP theorem
// the protocol falls on (with witness executions).
//
// Usage:
//
//	bivalence -proto wait-all -n 3
//	bivalence -proto wait-quorum -n 3 -resilience 1
//	bivalence -proto adopt-swap -n 2 -resilience 0
//	bivalence -proto wait-quorum -n 4 -resilience 0 -progress -trace t.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"

	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	os.Exit(run())
}

// run carries main's body so the deferred telemetry cleanup (trace flush,
// metrics-server shutdown) executes before the process exits.
func run() int {
	proto := flag.String("proto", "adopt-swap", "protocol: wait-all | wait-quorum | adopt-swap")
	n := flag.Int("n", 2, "number of processes")
	resilience := flag.Int("resilience", 1, "number of crash events the adversary may inject")
	parallel := flag.Int("parallel", 0, "exploration worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	stats := flag.Bool("stats", false, "print exploration engine telemetry")
	usePOR := flag.Bool("por", false,
		"analyze under ample-set partial-order reduction (delivery independence + decision visibility); verdicts are identical, configuration counts shrink")
	verifyAliasing := flag.Int("verify-aliasing", 0,
		"debug falsifier: re-expand every Nth state over poisoned scratch buffers to catch expansions that retain emitted slices (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	progress := flag.Bool("progress", false, "stream live exploration progress lines to stderr")
	tracePath := flag.String("trace", "", "write a JSONL run trace of the main exploration to this file (\"-\" for stdout); validate with `hundred trace-lint`")
	serveAddr := flag.String("serve", "", "serve live /metrics and /debug/pprof on this address (e.g. :8080) for the life of the run")
	snapshotEvery := flag.Duration("snapshot-every", 0,
		"timer-driven snapshot period for -progress/-trace/-serve (0 = 1s default, negative = barrier events only)")
	storeKind := flag.String("store", "mem",
		"visited-set backend: mem | spill | bitstate (bitstate is lossy: verdicts downgrade to \"no violation found\")")
	maxStoreBytes := flag.Int64("max-store-bytes", 0,
		"spill backend's resident-payload budget in bytes (0 = 256 MiB default)")
	sched := flag.String("sched", "",
		"exploration scheduler: barrier (default: per-level fork/join) | steal (persistent work-stealing pool); results are identical either way")
	flag.Parse()

	switch *sched {
	case "", "barrier", "steal":
	default:
		fmt.Fprintf(os.Stderr, "bivalence: unknown -sched %q (want barrier or steal)\n", *sched)
		return 2
	}
	storeCfg, err := store.ParseFlags(*storeKind, *maxStoreBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var p flp.Protocol
	switch *proto {
	case "wait-all":
		p = flp.NewWaitAll(*n)
	case "wait-quorum":
		p = flp.NewWaitQuorum(*n)
	case "adopt-swap":
		p = flp.NewAdoptSwap(*n)
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *proto)
		return 2
	}
	sink, obsCleanup, err := obs.SetupCLI(obs.CLIConfig{
		Tool: "bivalence", Progress: *progress, TracePath: *tracePath, ServeAddr: *serveAddr,
		Options: map[string]string{
			"proto":      *proto,
			"n":          strconv.Itoa(*n),
			"resilience": strconv.Itoa(*resilience),
			"parallel":   strconv.Itoa(*parallel),
			"por":        strconv.FormatBool(*usePOR),
			"store":      string(storeCfg.ResolvedKind()),
			"sched":      *sched,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer obsCleanup()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	var st *engine.Stats
	if *stats || storeCfg.ResolvedKind() != store.Mem {
		st = new(engine.Stats)
	}
	opts := flp.AnalyzeOptions{
		Resilience: resilience, Parallelism: *parallel, Stats: st,
		Sink: sink, SnapshotEvery: *snapshotEvery, Store: storeCfg,
		VerifyAliasing: *verifyAliasing, Sched: *sched,
	}
	if *usePOR {
		opts.Independent = flp.DeliveryIndependence(p)
		opts.Visible = flp.DecisionVisibility(p)
		opts.VerifyPOR = 16
	}
	rep, err := flp.Analyze(p, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		return 1
	}
	fmt.Printf("protocol:            %s (n=%d, resilience=%d)\n", rep.Protocol, *n, *resilience)
	if st != nil && *stats {
		fmt.Printf("exploration:         %s\n", st)
	}
	if st != nil {
		if line := st.StoreString(); line != "" {
			fmt.Printf("state store:         %s\n", line)
		}
	}
	fmt.Printf("configurations:      %d (%d transitions)\n", rep.States, rep.Edges)
	fmt.Printf("bivalent configs:    %d (bivalent initial: %v)\n", rep.BivalentConfigs, rep.HasBivalentInitial)
	fmt.Printf("decider config:      %v\n", rep.DeciderFound)
	fmt.Printf("verdict:             %s\n", flp.DescribeHorn(rep))
	if rep.AgreementViolated {
		fmt.Printf("\ndisagreement witness:\n%s\n", rep.AgreementWitness)
	}
	if rep.HasDeadlock {
		fmt.Printf("\nundecided deadlock witness:\n%s\n", rep.UndecidedDeadlock)
	}
	if rep.NondecidingLasso != nil {
		fmt.Printf("\nnon-deciding fair execution: prefix %d steps, then repeat forever:\n%s\n",
			len(rep.NondecidingLasso.Prefix), rep.NondecidingLasso.Cycle)
	}
	return 0
}
