package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/ring"
	"repro/internal/rounds"
	"repro/internal/sharedmem"
	"repro/internal/synth"
)

// benchRecord is the machine-readable performance record emitted by
// -bench-json (committed as BENCH_hundred.json): one exploration row per
// symmetric system comparing the full graph against its orbit quotient,
// and one synth row per exhaustive search comparing sequential and
// multicore pair checking.
type benchRecord struct {
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Explorations []explorationBench `json:"explorations"`
	Synth        []synthBench       `json:"synth"`
}

type explorationBench struct {
	System string `json:"system"`
	// Full-graph exploration.
	FullStates       int     `json:"full_states"`
	FullSeconds      float64 `json:"full_seconds"`
	FullStatesPerSec float64 `json:"full_states_per_sec"`
	// Quotient exploration under the system's symmetry canonicalizer.
	QuotientStates       int     `json:"quotient_states"`
	QuotientSeconds      float64 `json:"quotient_seconds"`
	QuotientStatesPerSec float64 `json:"quotient_states_per_sec"`
	RawStates            int     `json:"raw_states"`
	ReductionFactor      float64 `json:"reduction_factor"`
}

type synthBench struct {
	Search       string  `json:"search"`
	PairsChecked uint64  `json:"pairs_checked"`
	Passed       uint64  `json:"passed"`
	SeqSeconds   float64 `json:"seq_seconds"`
	ParSeconds   float64 `json:"par_seconds"`
	ParWorkers   int     `json:"par_workers"`
	Speedup      float64 `json:"speedup"`
	PairsPerSec  float64 `json:"pairs_per_sec_parallel"`
}

// benchWorkload is one symmetric system: an explore function parameterized
// only by whether the canonicalizer is installed.
type benchWorkload struct {
	name    string
	explore func(canon bool) (states int, st engine.Stats, err error)
}

func benchWorkloads() ([]benchWorkload, error) {
	var out []benchWorkload
	shared := func(alg sharedmem.Algorithm) benchWorkload {
		return benchWorkload{name: alg.Name(), explore: func(canon bool) (int, engine.Stats, error) {
			var st engine.Stats
			opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st}
			if canon {
				opts.Canon = sharedmem.CanonFor(alg)
			}
			g, err := sharedmem.ExploreWith(alg, opts)
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		}}
	}
	out = append(out,
		shared(sharedmem.NewPeterson2()),
		shared(sharedmem.NewTicketLock(4)),
		shared(sharedmem.NewTournament4()),
	)
	for _, n := range []int{3, 4} {
		p := flp.NewWaitQuorum(n)
		canonFn, err := flp.PermutationCanon(p)
		if err != nil {
			return nil, err
		}
		out = append(out, benchWorkload{
			name: fmt.Sprintf("%s(n=%d)", p.Name(), n),
			explore: func(canon bool) (int, engine.Stats, error) {
				var st engine.Stats
				opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st}
				if canon {
					opts.Canon = canonFn
				}
				g, err := core.Explore[string](flp.NewSystem(p, nil, 1), opts)
				if err != nil {
					return 0, st, err
				}
				return g.Len(), st, nil
			},
		})
	}
	crash := rounds.CrashSpace{Procs: 8, MaxFaults: 4, Rounds: 16}
	crashSys, err := crash.System()
	if err != nil {
		return nil, err
	}
	out = append(out, benchWorkload{
		name: "crash-space(n=8,t=4,r=16)",
		explore: func(canon bool) (int, engine.Stats, error) {
			var st engine.Stats
			opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st}
			if canon {
				opts.Canon = crash.Canon()
			}
			g, err := core.Explore[string](crashSys, opts)
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		},
	})
	asyncLCR, err := ring.NewAsyncLCR(ring.DescendingIDs(7))
	if err != nil {
		return nil, err
	}
	out = append(out, benchWorkload{
		// No symmetry canonicalizer (distinct ids break the symmetry); the
		// row still records full-graph throughput.
		name: "async-lcr(n=7)",
		explore: func(canon bool) (int, engine.Stats, error) {
			var st engine.Stats
			if canon {
				return 0, st, nil
			}
			g, err := asyncLCR.CheckElection(core.ExploreOptions{Parallelism: parallelism, Stats: &st})
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		},
	})
	return out, nil
}

// runBenchJSON executes the benchmark suite and writes the JSON record to
// stdout.
func runBenchJSON() error {
	rec := benchRecord{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	workloads, err := benchWorkloads()
	if err != nil {
		return err
	}
	for _, w := range workloads {
		full, fullStats, err := w.explore(false)
		if err != nil {
			return fmt.Errorf("%s full: %w", w.name, err)
		}
		row := explorationBench{
			System:           w.name,
			FullStates:       full,
			FullSeconds:      fullStats.Elapsed.Seconds(),
			FullStatesPerSec: fullStats.StatesPerSec,
		}
		quo, quoStats, err := w.explore(true)
		if err != nil {
			return fmt.Errorf("%s quotient: %w", w.name, err)
		}
		if quo > 0 {
			row.QuotientStates = quo
			row.QuotientSeconds = quoStats.Elapsed.Seconds()
			row.QuotientStatesPerSec = quoStats.StatesPerSec
			row.RawStates = quoStats.RawStates
			// Report the end-to-end reduction (full vs quotient), not the
			// engine's sampled lower bound.
			row.ReductionFactor = float64(full) / float64(quo)
		}
		rec.Explorations = append(rec.Explorations, row)
	}

	searches := []struct {
		name string
		run  func(workers int) (synth.Result, error)
	}{
		{"tas-mutex(v=2,t=2,lockout-free)", func(w int) (synth.Result, error) {
			return synth.SearchTASMutex(synth.TASSearchConfig{
				Values: 2, TryStates: 2, RequireLockoutFree: true, Workers: w,
			})
		}},
		{"rw-mutex(v=2,t=2)", func(w int) (synth.Result, error) {
			return synth.SearchRWMutex(synth.RWSearchConfig{Values: 2, TryStates: 2, Workers: w})
		}},
	}
	for _, s := range searches {
		seqStart := time.Now()
		seqRes, err := s.run(1)
		if err != nil {
			return fmt.Errorf("%s seq: %w", s.name, err)
		}
		seqSec := time.Since(seqStart).Seconds()
		parStart := time.Now()
		parRes, err := s.run(0)
		if err != nil {
			return fmt.Errorf("%s par: %w", s.name, err)
		}
		parSec := time.Since(parStart).Seconds()
		if parRes.PairsChecked != seqRes.PairsChecked || parRes.Passed != seqRes.Passed {
			return fmt.Errorf("%s: parallel search diverged from sequential (%d/%d pairs, %d/%d passed)",
				s.name, parRes.PairsChecked, seqRes.PairsChecked, parRes.Passed, seqRes.Passed)
		}
		rec.Synth = append(rec.Synth, synthBench{
			Search:       s.name,
			PairsChecked: parRes.PairsChecked,
			Passed:       parRes.Passed,
			SeqSeconds:   seqSec,
			ParSeconds:   parSec,
			ParWorkers:   runtime.GOMAXPROCS(0),
			Speedup:      seqSec / parSec,
			PairsPerSec:  float64(parRes.PairsChecked) / parSec,
		})
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}
