package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/ring"
	"repro/internal/rounds"
	"repro/internal/sharedmem"
	"repro/internal/synth"
)

// benchSchemaVersion identifies the BENCH_hundred.json layout. Version 2
// wraps the former single-record layout in {schema_version, runs: [...]},
// appending one run per -bench-json invocation so regressions are visible
// in the committed history, and adds partial-order-reduction rows next to
// the quotient rows. Version 3 adds the memory axis: per-row store-backend
// figures (kind, budget, spilled bytes, segments) and peak process RSS,
// so budget-bounded big-instance runs are comparable across history. The
// additions are all omitempty, so v2 readers' fields are unchanged and v2
// histories load as-is. Version 4 adds the allocation axis: per-row
// allocs_per_state and bytes_per_state measured as runtime.MemStats deltas
// across the full-mode exploration, so the zero-alloc hot-path contract is
// gated by `hundred bench-compare` alongside throughput and determinism.
// Again omitempty: v3 histories load as-is with the alloc gate inactive on
// pre-v4 rows. Version 5 adds the scheduler axis: designated workloads
// carry a full-mode worker-scaling sweep (states/sec under the steal
// scheduler at 1/2/4/8 workers plus barrier baselines, with parallel
// efficiency relative to the one-worker steal rate), so scheduler-layer
// regressions show up as an efficiency drop `hundred bench-compare` warns
// about. Omitempty again: pre-v5 rows simply carry no scaling points.
// Version 6 adds the attribution axis: per-row phase fractions of the
// full-mode exploration (expand/barrier/store-I/O/replay shares of the
// summed worker clock, plus the sampled canon/intern split), so a
// throughput regression in history comes annotated with which phase grew.
// Omitempty once more: pre-v6 rows carry no phases object.
const benchSchemaVersion = 6

// benchHistoryCap bounds the committed run history: the newest runs win.
const benchHistoryCap = 16

// benchFile is the on-disk BENCH_hundred.json layout.
type benchFile struct {
	SchemaVersion int           `json:"schema_version"`
	Runs          []benchRecord `json:"runs"`
}

// benchRecord is one -bench-json run: one exploration row per system
// comparing the full graph against its orbit quotient and/or its ample-set
// reduction, and one synth row per exhaustive search comparing sequential
// and multicore pair checking.
type benchRecord struct {
	Timestamp    string             `json:"timestamp,omitempty"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Explorations []explorationBench `json:"explorations"`
	Synth        []synthBench       `json:"synth"`
}

type explorationBench struct {
	System string `json:"system"`
	// Full-graph exploration.
	FullStates       int     `json:"full_states"`
	FullSeconds      float64 `json:"full_seconds"`
	FullStatesPerSec float64 `json:"full_states_per_sec"`
	// Quotient exploration under the system's symmetry canonicalizer.
	QuotientStates       int     `json:"quotient_states,omitempty"`
	QuotientSeconds      float64 `json:"quotient_seconds,omitempty"`
	QuotientStatesPerSec float64 `json:"quotient_states_per_sec,omitempty"`
	RawStates            int     `json:"raw_states,omitempty"`
	ReductionFactor      float64 `json:"reduction_factor,omitempty"`
	// Ample-set partial-order reduction under the system's independence
	// relation, and the POR+quotient stack where both exist.
	PORStates          int     `json:"por_states,omitempty"`
	PORSeconds         float64 `json:"por_seconds,omitempty"`
	PORStatesPerSec    float64 `json:"por_states_per_sec,omitempty"`
	PORReductionFactor float64 `json:"por_reduction_factor,omitempty"`
	PORQuotientStates  int     `json:"por_quotient_states,omitempty"`
	// Store-backend figures of the full-mode exploration (schema v3; zero
	// for the default mem backend on pre-v3 rows).
	StoreKind         string `json:"store,omitempty"`
	MaxStoreBytes     int64  `json:"max_store_bytes,omitempty"`
	StoreBytesSpilled int64  `json:"store_bytes_spilled,omitempty"`
	StoreSegments     int    `json:"store_segments,omitempty"`
	// PeakRSSBytes is the process's peak resident set after the full-mode
	// exploration (process-wide and monotone: rows later in a run inherit
	// at least the peaks of earlier rows).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// AllocsPerState and BytesPerState are heap-allocation counts and bytes
	// per discovered state across the full-mode exploration (schema v4),
	// measured as runtime.MemStats deltas. They are process-wide, so they
	// include the graph the exploration returns — the point is the trend:
	// a hot path that starts allocating per successor moves these by an
	// order of magnitude, which `hundred bench-compare` gates on.
	AllocsPerState float64 `json:"allocs_per_state,omitempty"`
	BytesPerState  float64 `json:"bytes_per_state,omitempty"`
	// Scaling is the schema-v5 worker-scaling sweep of the full-mode
	// exploration: the steal scheduler at each grid worker count plus
	// barrier baselines at the endpoints. Only the designated scaling
	// workloads carry it (sweeping every workload would triple the suite's
	// runtime for redundant curves).
	Scaling []schedPoint `json:"scaling,omitempty"`
	// Phases is the schema-v6 phase attribution of the full-mode
	// exploration (see phaseBench). Absent on pre-v6 rows.
	Phases *phaseBench `json:"phases,omitempty"`
}

// phaseBench is one row's phase-fraction record: each exact phase's share
// of the full-mode run's summed per-worker clock, in [0,1], plus the
// sampled canon/intern split (fractions of sampled expansion time). Pure
// timing — bench-compare never gates on it; its job is to annotate a
// throughput move with which phase grew.
type phaseBench struct {
	Expand  float64 `json:"expand"`
	Barrier float64 `json:"barrier,omitempty"`
	StoreIO float64 `json:"store_io,omitempty"`
	Replay  float64 `json:"replay,omitempty"`
	Steal   float64 `json:"steal,omitempty"`
	Handoff float64 `json:"handoff,omitempty"`
	Idle    float64 `json:"idle,omitempty"`
	Canon   float64 `json:"canon_frac,omitempty"`
	Intern  float64 `json:"intern_frac,omitempty"`
}

// benchPhases converts a run's phase profile into the v6 fraction record
// (nil when the run recorded no profile).
func benchPhases(st engine.Stats) *phaseBench {
	p := st.Phases
	total := p.TotalNs()
	if total <= 0 {
		return nil
	}
	f := func(ns int64) float64 { return round4(float64(ns) / float64(total)) }
	return &phaseBench{
		Expand:  f(p.ExpandNs),
		Barrier: f(p.BarrierWaitNs),
		StoreIO: f(p.StoreIONs),
		Replay:  f(p.ReplayNs),
		Steal:   f(p.StealNs),
		Handoff: f(p.HandoffNs),
		Idle:    f(p.IdleNs),
		Canon:   round4(p.CanonFrac()),
		Intern:  round4(p.InternFrac()),
	}
}

// round4 keeps the committed JSON readable (four decimal places).
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// schedPoint is one cell of a worker-scaling sweep. Efficiency is the
// parallel efficiency of a steal-scheduler point: states/sec divided by
// workers times the one-worker steal rate (1.0 = perfect linear scaling);
// barrier baseline points leave it zero. AllocsPerState is the same
// process-wide runtime.MemStats delta as the v4 row metric, here gating
// the steal path's steady-state zero-allocation contract.
type schedPoint struct {
	Sched          string  `json:"sched"`
	Workers        int     `json:"workers"`
	Seconds        float64 `json:"seconds"`
	StatesPerSec   float64 `json:"states_per_sec"`
	Efficiency     float64 `json:"efficiency,omitempty"`
	AllocsPerState float64 `json:"allocs_per_state,omitempty"`
}

// scalingWorkers is the steal-scheduler worker grid of the v5 sweep.
var scalingWorkers = []int{1, 2, 4, 8}

type synthBench struct {
	Search       string  `json:"search"`
	PairsChecked uint64  `json:"pairs_checked"`
	Passed       uint64  `json:"passed"`
	SeqSeconds   float64 `json:"seq_seconds"`
	ParSeconds   float64 `json:"par_seconds"`
	ParWorkers   int     `json:"par_workers"`
	Speedup      float64 `json:"speedup"`
	PairsPerSec  float64 `json:"pairs_per_sec_parallel"`
}

// exploreMode selects which reduction stack a workload runs under.
type exploreMode int

const (
	modeFull exploreMode = iota
	modeQuotient
	modePOR
	modePORQuotient
)

// benchWorkload is one system: an explore function parameterized by the
// reduction mode. Unsupported modes return 0 states and are skipped.
type benchWorkload struct {
	name    string
	explore func(mode exploreMode) (states int, st engine.Stats, err error)
	// scale, when non-nil, runs the workload's full-mode exploration under
	// an explicit scheduler and worker count for the v5 scaling sweep.
	scale func(sc string, workers int) (states int, st engine.Stats, err error)
}

func benchWorkloads() ([]benchWorkload, error) {
	var out []benchWorkload
	shared := func(alg sharedmem.Algorithm) benchWorkload {
		return benchWorkload{name: alg.Name(), explore: func(mode exploreMode) (int, engine.Stats, error) {
			var st engine.Stats
			opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st, Store: storeCfg, Sched: sched}
			switch mode {
			case modeQuotient:
				opts.Canon = sharedmem.CanonFor(alg)
			case modePOR, modePORQuotient:
				return 0, st, nil
			}
			g, err := sharedmem.ExploreWith(alg, opts)
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		}}
	}
	out = append(out,
		shared(sharedmem.NewPeterson2()),
		shared(sharedmem.NewTicketLock(4)),
		shared(sharedmem.NewTournament4()),
	)
	// FLP wait-quorum: the resilience-1 rows carry the quotient comparison
	// (that space is provably POR-irreducible; see flp.DeliveryIndependence),
	// the crash-free rows carry POR and the POR+quotient stack.
	for _, cfg := range []struct {
		n, resilience int
	}{{3, 1}, {4, 1}, {3, 0}, {4, 0}} {
		cfg := cfg
		p := flp.NewWaitQuorum(cfg.n)
		canonFn, err := flp.PermutationCanon(p)
		if err != nil {
			return nil, err
		}
		canonB, err := flp.PermutationCanonBytes(p)
		if err != nil {
			return nil, err
		}
		out = append(out, benchWorkload{
			name: fmt.Sprintf("%s(n=%d,r=%d)", p.Name(), cfg.n, cfg.resilience),
			explore: func(mode exploreMode) (int, engine.Stats, error) {
				var st engine.Stats
				opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st, Store: storeCfg, Sched: sched}
				switch mode {
				case modeQuotient:
					opts.Canon = canonFn
					opts.CanonBytes = canonB
				case modePOR, modePORQuotient:
					if cfg.resilience != 0 {
						return 0, st, nil // irreducible; don't re-explore 563k states to show 1.00x
					}
					opts.Independent = flp.DeliveryIndependence(p)
					opts.Visible = flp.DecisionVisibility(p)
					if mode == modePORQuotient {
						opts.Canon = canonFn
						opts.CanonBytes = canonB
					}
				}
				g, err := core.Explore[string](flp.NewSystem(p, nil, cfg.resilience), opts)
				if err != nil {
					return 0, st, err
				}
				return g.Len(), st, nil
			},
		})
	}
	crash := rounds.CrashSpace{Procs: 8, MaxFaults: 4, Rounds: 16}
	crashSys, err := crash.System()
	if err != nil {
		return nil, err
	}
	out = append(out, benchWorkload{
		name: "crash-space(n=8,t=4,r=16)",
		explore: func(mode exploreMode) (int, engine.Stats, error) {
			var st engine.Stats
			opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st, Store: storeCfg, Sched: sched}
			switch mode {
			case modeQuotient:
				opts.Canon = crash.Canon()
			case modePOR, modePORQuotient:
				return 0, st, nil
			}
			g, err := core.Explore[string](crashSys, opts)
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		},
	})
	asyncLCR, err := ring.NewAsyncLCR(ring.DescendingIDs(7))
	if err != nil {
		return nil, err
	}
	out = append(out, benchWorkload{
		// No symmetry canonicalizer (distinct ids break the symmetry); the
		// row records full-graph throughput and the disjoint-links POR.
		name: "async-lcr(n=7)",
		explore: func(mode exploreMode) (int, engine.Stats, error) {
			var st engine.Stats
			opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st, Store: storeCfg, Sched: sched}
			switch mode {
			case modeQuotient, modePORQuotient:
				return 0, st, nil
			case modePOR:
				opts.Independent = asyncLCR.Independence()
			}
			g, err := asyncLCR.CheckElection(opts)
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		},
		// The wide workload of the v5 scaling sweep: frontiers in the tens
		// of thousands, where the barrier scheduler is already near its
		// best — the sweep gates the steal scheduler against regressing it.
		scale: func(sc string, workers int) (int, engine.Stats, error) {
			var st engine.Stats
			g, err := asyncLCR.CheckElection(core.ExploreOptions{
				Parallelism: workers, Stats: &st, Store: storeCfg, Sched: sc,
			})
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		},
	})
	asyncABP, err := datalink.NewAsyncABP(8)
	if err != nil {
		return nil, err
	}
	if benchBig {
		// The budget-bounded big instances (-bench-big): the next n of the
		// suite's two scaling series, sized past the old all-in-RAM design
		// point. Full mode only — the point of these rows is the memory
		// axis (spill figures + peak RSS), not the reduction comparison.
		bigLCR, err := ring.NewAsyncLCR(ring.DescendingIDs(8))
		if err != nil {
			return nil, err
		}
		out = append(out, benchWorkload{
			name: "async-lcr(n=8)",
			explore: func(mode exploreMode) (int, engine.Stats, error) {
				var st engine.Stats
				if mode != modeFull {
					return 0, st, nil
				}
				g, err := bigLCR.CheckElection(core.ExploreOptions{
					Parallelism: parallelism, Stats: &st, Store: storeCfg, MaxStates: 200_000_000, Sched: sched,
				})
				if err != nil {
					return 0, st, err
				}
				return g.Len(), st, nil
			},
		})
		p5 := flp.NewWaitQuorum(5)
		out = append(out, benchWorkload{
			name: "wait-quorum(n=5,r=0)",
			explore: func(mode exploreMode) (int, engine.Stats, error) {
				var st engine.Stats
				if mode != modeFull {
					return 0, st, nil
				}
				g, err := core.Explore[string](flp.NewSystem(p5, nil, 0), core.ExploreOptions{
					Parallelism: parallelism, Stats: &st, Store: storeCfg, MaxStates: 200_000_000, Sched: sched,
				})
				if err != nil {
					return 0, st, err
				}
				return g.Len(), st, nil
			},
		})
	}
	out = append(out, benchWorkload{
		// The cyclic workload: retransmission loops exercise the C3 proviso.
		name: "async-abp(m=8)",
		explore: func(mode exploreMode) (int, engine.Stats, error) {
			var st engine.Stats
			opts := core.ExploreOptions{Parallelism: parallelism, Stats: &st, Store: storeCfg, Sched: sched}
			switch mode {
			case modeQuotient, modePORQuotient:
				return 0, st, nil
			case modePOR:
				opts.Independent = asyncABP.Independence()
				opts.Visible = asyncABP.ProgressVisibility()
			}
			g, err := asyncABP.CheckDelivery(opts)
			if err != nil {
				return 0, st, err
			}
			return g.Len(), st, nil
		},
	})
	braidScale := func(sc string, workers int) (int, engine.Stats, error) {
		var st engine.Stats
		res, err := engine.Explore([]braidState{{lane: -1}},
			braidExpand(braidLanes, braidDepth), engine.Options{
				Parallelism: workers, Stats: &st, Store: storeCfg, Sched: sc,
			})
		if err != nil {
			return 0, st, err
		}
		return len(res.States), st, nil
	}
	out = append(out, benchWorkload{
		// The deep-narrow workload of the v5 scaling sweep: level width
		// never exceeds braidLanes, so the barrier scheduler pays a
		// fork/join every handful of states while the steal scheduler
		// streams the frontier through its shard queues. The chain speedup
		// headline is this row's steal-vs-barrier ratio at 8 workers.
		name: fmt.Sprintf("braid(lanes=%d,depth=%dk)", braidLanes, braidDepth/1000),
		explore: func(mode exploreMode) (int, engine.Stats, error) {
			var st engine.Stats
			if mode != modeFull {
				return 0, st, nil
			}
			return braidScale(sched, parallelism)
		},
		scale: braidScale,
	})
	return out, nil
}

// braidLanes/braidDepth size the deep-narrow workload: 1 + lanes*depth
// states whose frontier never exceeds lanes. 64 lanes keep the barrier
// scheduler in its sequential bailout (frontier < workers*16 up to 8
// workers) while giving the steal scheduler enough in-flight states to
// occupy the worker grid.
const (
	braidLanes = 64
	braidDepth = 6_250
)

// braidState is one state of the braid workload: `braidLanes` disjoint
// chains hanging off a shared root (lane -1).
type braidState struct{ lane, pos int32 }

// braidExpand expands the braid. Every expansion runs braidWork first so
// the schedulers are measured against a realistic per-state derivation
// cost rather than a no-op successor function.
func braidExpand(lanes, depth int32) engine.ExpandFunc[braidState] {
	return func(s braidState, x *engine.Ctx[braidState]) {
		if braidWork(s.lane, s.pos) == 0 {
			return // unreachable (braidWork is nonzero); anchors the work dose
		}
		if s.lane < 0 {
			for l := int32(0); l < lanes; l++ {
				x.Emit(braidState{lane: l, pos: 1}, "start", int(l))
			}
			return
		}
		if s.pos < depth {
			x.Emit(braidState{lane: s.lane, pos: s.pos + 1}, "step", int(s.lane))
		}
	}
}

// braidWork is a fixed dose (~2-3µs) of pure 64-bit mixing, standing in
// for the guard evaluation and state derivation a real protocol expansion
// performs per successor; it is what the scheduling layer's handoff cost
// amortizes against.
func braidWork(lane, pos int32) uint64 {
	h := uint64(uint32(lane))<<32 | uint64(uint32(pos)) | 1
	for i := 0; i < 2000; i++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
	}
	return h
}

// runBench executes the benchmark suite and returns the run record.
func runBench() (benchRecord, error) {
	rec := benchRecord{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	workloads, err := benchWorkloads()
	if err != nil {
		return rec, err
	}
	for _, w := range workloads {
		// Bracket the full-mode exploration with MemStats reads for the
		// v4 allocation axis. GC first so the delta measures this
		// workload's allocations, not a collection boundary.
		runtime.GC()
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		full, fullStats, err := w.explore(modeFull)
		if err != nil {
			return rec, fmt.Errorf("%s full: %w", w.name, err)
		}
		runtime.ReadMemStats(&msAfter)
		row := explorationBench{
			System:           w.name,
			FullStates:       full,
			FullSeconds:      fullStats.Elapsed.Seconds(),
			FullStatesPerSec: fullStats.StatesPerSec,

			StoreKind:         string(fullStats.Store.Kind),
			MaxStoreBytes:     fullStats.Store.MaxBytes,
			StoreBytesSpilled: fullStats.Store.BytesSpilled,
			StoreSegments:     fullStats.Store.Segments,
			PeakRSSBytes:      fullStats.PeakRSSBytes,
		}
		if full > 0 {
			row.AllocsPerState = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(full)
			row.BytesPerState = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(full)
		}
		row.Phases = benchPhases(fullStats)
		quo, quoStats, err := w.explore(modeQuotient)
		if err != nil {
			return rec, fmt.Errorf("%s quotient: %w", w.name, err)
		}
		if quo > 0 {
			row.QuotientStates = quo
			row.QuotientSeconds = quoStats.Elapsed.Seconds()
			row.QuotientStatesPerSec = quoStats.StatesPerSec
			row.RawStates = quoStats.RawStates
			// Report the end-to-end reduction (full vs quotient), not the
			// engine's sampled lower bound.
			row.ReductionFactor = float64(full) / float64(quo)
		}
		por, porStats, err := w.explore(modePOR)
		if err != nil {
			return rec, fmt.Errorf("%s por: %w", w.name, err)
		}
		if por > 0 {
			row.PORStates = por
			row.PORSeconds = porStats.Elapsed.Seconds()
			row.PORStatesPerSec = porStats.StatesPerSec
			row.PORReductionFactor = float64(full) / float64(por)
		}
		both, _, err := w.explore(modePORQuotient)
		if err != nil {
			return rec, fmt.Errorf("%s por+quotient: %w", w.name, err)
		}
		if both > 0 {
			row.PORQuotientStates = both
		}
		if w.scale != nil {
			if row.Scaling, err = runScalingSweep(w, full); err != nil {
				return rec, err
			}
		}
		rec.Explorations = append(rec.Explorations, row)
	}

	searches := []struct {
		name string
		run  func(workers int) (synth.Result, error)
	}{
		{"tas-mutex(v=2,t=2,lockout-free)", func(w int) (synth.Result, error) {
			return synth.SearchTASMutex(synth.TASSearchConfig{
				Values: 2, TryStates: 2, RequireLockoutFree: true, Workers: w,
			})
		}},
		{"rw-mutex(v=2,t=2)", func(w int) (synth.Result, error) {
			return synth.SearchRWMutex(synth.RWSearchConfig{Values: 2, TryStates: 2, Workers: w})
		}},
	}
	for _, s := range searches {
		seqStart := time.Now()
		seqRes, err := s.run(1)
		if err != nil {
			return rec, fmt.Errorf("%s seq: %w", s.name, err)
		}
		seqSec := time.Since(seqStart).Seconds()
		parStart := time.Now()
		parRes, err := s.run(0)
		if err != nil {
			return rec, fmt.Errorf("%s par: %w", s.name, err)
		}
		parSec := time.Since(parStart).Seconds()
		if parRes.PairsChecked != seqRes.PairsChecked || parRes.Passed != seqRes.Passed {
			return rec, fmt.Errorf("%s: parallel search diverged from sequential (%d/%d pairs, %d/%d passed)",
				s.name, parRes.PairsChecked, seqRes.PairsChecked, parRes.Passed, seqRes.Passed)
		}
		rec.Synth = append(rec.Synth, synthBench{
			Search:       s.name,
			PairsChecked: parRes.PairsChecked,
			Passed:       parRes.Passed,
			SeqSeconds:   seqSec,
			ParSeconds:   parSec,
			ParWorkers:   runtime.GOMAXPROCS(0),
			Speedup:      seqSec / parSec,
			PairsPerSec:  float64(parRes.PairsChecked) / parSec,
		})
	}
	return rec, nil
}

// runScalingSweep runs one workload's v5 worker-scaling sweep: the steal
// scheduler across scalingWorkers, then barrier baselines at the grid's
// endpoints (the 1-worker barrier run is the legacy sequential reference;
// the top-worker one is what the steal-vs-barrier speedup is quoted
// against). Every run must reproduce the full-mode state count — the
// sweep doubles as one more determinism check on real workloads.
func runScalingSweep(w benchWorkload, wantStates int) ([]schedPoint, error) {
	var pts []schedPoint
	var base float64 // one-worker steal throughput, the efficiency denominator
	type cell struct {
		sched   string
		workers int
	}
	grid := make([]cell, 0, len(scalingWorkers)+2)
	for _, n := range scalingWorkers {
		grid = append(grid, cell{"steal", n})
	}
	grid = append(grid,
		cell{"barrier", 1},
		cell{"barrier", scalingWorkers[len(scalingWorkers)-1]})
	for _, c := range grid {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		states, st, err := w.scale(c.sched, c.workers)
		if err != nil {
			return nil, fmt.Errorf("%s %s w=%d: %w", w.name, c.sched, c.workers, err)
		}
		runtime.ReadMemStats(&after)
		if states != wantStates {
			return nil, fmt.Errorf("%s %s w=%d: state count %d != full-mode %d (determinism contract)",
				w.name, c.sched, c.workers, states, wantStates)
		}
		pt := schedPoint{
			Sched: c.sched, Workers: c.workers,
			Seconds: st.Elapsed.Seconds(), StatesPerSec: st.StatesPerSec,
		}
		if states > 0 {
			pt.AllocsPerState = float64(after.Mallocs-before.Mallocs) / float64(states)
		}
		if c.sched == "steal" {
			if c.workers == 1 {
				base = pt.StatesPerSec
			}
			if base > 0 {
				pt.Efficiency = pt.StatesPerSec / (float64(c.workers) * base)
			}
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// scalingPoint finds one sweep cell; ok is false when the row carries no
// such point (pre-v5 history, or a non-scaling workload).
func scalingPoint(pts []schedPoint, sched string, workers int) (schedPoint, bool) {
	for _, p := range pts {
		if p.Sched == sched && p.Workers == workers {
			return p, true
		}
	}
	return schedPoint{}, false
}

// loadBenchFile reads an existing bench record file, migrating the legacy
// pre-versioned single-record layout into a one-run history. A missing
// file yields an empty history; an unreadable one is an error (refuse to
// clobber data we cannot parse).
func loadBenchFile(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return benchFile{SchemaVersion: benchSchemaVersion}, nil
	}
	if err != nil {
		return benchFile{}, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err == nil && bf.SchemaVersion >= 2 {
		if bf.SchemaVersion > benchSchemaVersion {
			return benchFile{}, fmt.Errorf("%s: schema_version %d is newer than this binary's %d; upgrade the binary or move the file aside (refusing to rewrite newer history)",
				path, bf.SchemaVersion, benchSchemaVersion)
		}
		return bf, nil
	}
	var legacy benchRecord
	if err := json.Unmarshal(data, &legacy); err != nil || len(legacy.Explorations) == 0 {
		return benchFile{}, fmt.Errorf("%s: unrecognized bench record layout; fix the JSON or move/delete the file and re-run (refusing to overwrite bench history)", path)
	}
	return benchFile{SchemaVersion: benchSchemaVersion, Runs: []benchRecord{legacy}}, nil
}

// runBenchJSON executes the suite and records the results. With an output
// path it appends the run to the file's history (migrating the legacy
// layout, capping at benchHistoryCap runs) and prints a warn-only
// comparison against the previous run; with an empty path it emits the
// single-run record as JSON on stdout.
func runBenchJSON(outPath string) error {
	// Validate the history file before spending minutes on the suite: a
	// malformed file should fail fast, not after the benchmarks ran.
	var bf benchFile
	if outPath != "" {
		var err error
		if bf, err = loadBenchFile(outPath); err != nil {
			return err
		}
	}
	rec, err := runBench()
	if err != nil {
		return err
	}
	if outPath == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(benchFile{SchemaVersion: benchSchemaVersion, Runs: []benchRecord{rec}})
	}
	var prev *benchRecord
	if len(bf.Runs) > 0 {
		prev = &bf.Runs[len(bf.Runs)-1]
	}
	bf.Runs = append(bf.Runs, rec)
	// The appended run carries current-schema fields, so the file is now a
	// current-schema document — stamp it as such (previously the loaded
	// version was written back unchanged, leaving v3+ fields in files still
	// labeled v2).
	bf.SchemaVersion = benchSchemaVersion
	if excess := len(bf.Runs) - benchHistoryCap; excess > 0 {
		bf.Runs = append([]benchRecord(nil), bf.Runs[excess:]...)
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %s to %s (%d runs in history)\n", rec.Timestamp, outPath, len(bf.Runs))
	compareBenchRuns(prev, &rec)
	return nil
}

// compareBenchRuns prints a benchstat-style smoke comparison of the new
// run against the previous one. It only warns — state counts should never
// move without a code change, and throughput on shared CI hardware is too
// noisy to gate on — so it never fails the run.
func compareBenchRuns(prev, cur *benchRecord) {
	if prev == nil {
		fmt.Println("no previous run to compare against")
		return
	}
	prevRows := make(map[string]explorationBench, len(prev.Explorations))
	for _, r := range prev.Explorations {
		prevRows[r.System] = r
	}
	fmt.Printf("%-28s %14s %14s %8s\n", "system", "prev states/s", "cur states/s", "delta")
	for _, r := range cur.Explorations {
		p, ok := prevRows[r.System]
		if !ok {
			fmt.Printf("%-28s %14s %14.0f %8s\n", r.System, "-", r.FullStatesPerSec, "new")
			continue
		}
		delta := 0.0
		if p.FullStatesPerSec > 0 {
			delta = (r.FullStatesPerSec - p.FullStatesPerSec) / p.FullStatesPerSec * 100
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%%\n", r.System, p.FullStatesPerSec, r.FullStatesPerSec, delta)
		for what, pair := range map[string][2]int{
			"full":         {p.FullStates, r.FullStates},
			"quotient":     {p.QuotientStates, r.QuotientStates},
			"por":          {p.PORStates, r.PORStates},
			"por+quotient": {p.PORQuotientStates, r.PORQuotientStates},
		} {
			// A zero on either side means the mode was added or removed,
			// not that the count moved.
			if pair[0] != pair[1] && pair[0] > 0 && pair[1] > 0 {
				fmt.Printf("  WARN %s: %s state count moved %d -> %d (determinism contract: investigate)\n",
					r.System, what, pair[0], pair[1])
			}
		}
		if delta < -30 && p.FullSeconds >= benchMinGateSeconds && r.FullSeconds >= benchMinGateSeconds {
			fmt.Printf("  WARN %s: full-graph throughput regressed %.1f%%\n", r.System, -delta)
		}
		if p.AllocsPerState > 0 && r.AllocsPerState > p.AllocsPerState*(1+benchAllocThreshold) {
			fmt.Printf("  WARN %s: allocs/state grew %.2f -> %.2f (zero-alloc hot-path contract)\n",
				r.System, p.AllocsPerState, r.AllocsPerState)
		}
		topW := scalingWorkers[len(scalingWorkers)-1]
		if cs, ok := scalingPoint(r.Scaling, "steal", topW); ok {
			if cb, ok := scalingPoint(r.Scaling, "barrier", topW); ok && cb.StatesPerSec > 0 {
				fmt.Printf("  scaling %s: steal@%d %.0f states/s (eff %.2f), %.2fx vs barrier@%d\n",
					r.System, topW, cs.StatesPerSec, cs.Efficiency, cs.StatesPerSec/cb.StatesPerSec, topW)
			}
			if ps, ok := scalingPoint(p.Scaling, "steal", topW); ok &&
				ps.Efficiency > 0 && cs.Efficiency < ps.Efficiency*(1-benchEffThreshold) {
				fmt.Printf("  WARN %s: %d-worker steal efficiency dropped %.2f -> %.2f\n",
					r.System, topW, ps.Efficiency, cs.Efficiency)
			}
		}
	}
}
