// Command hundred runs the reproduction experiments E01–E21 (see
// EXPERIMENTS.md) and prints their result tables.
//
// Usage:
//
//	hundred                    # run every experiment
//	hundred E05 E11            # run selected experiments
//	hundred -list              # list experiment ids and titles
//	hundred -por E11 E21       # state-space experiments with ample-set POR
//	hundred -cpuprofile cpu.pb # profile an experiment run
//	hundred -progress E11      # live telemetry on stderr
//	hundred -trace t.jsonl E11 # JSONL run trace (validate with trace-lint)
//	hundred -serve :8080 E11   # /metrics + /debug/pprof while running
//	hundred fuzz -budget 30s   # budgeted generative differential-fuzz sweep
//	hundred fuzz -seed 3 ...   # replay one generated space (see -help)
//	hundred trace-lint t.jsonl # validate a JSONL run trace
//	hundred report t.jsonl     # render a trace into a markdown run report
//	hundred trace-diff a b     # localize the first divergence of two traces
//	hundred run -workload lcr -runs 16   # live adversarial runs, refined
//	hundred run -workload abp -drop 0.3 -buggy  # catches the silent sender
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/async"
	"repro/internal/clocks"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/knowledge"
	"repro/internal/obs"
	"repro/internal/registers"
	"repro/internal/ring"
	"repro/internal/rounds"
	"repro/internal/scenario"
	"repro/internal/sessions"
	"repro/internal/sharedmem"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/synth"
)

type experiment struct {
	id    string
	title string
	run   func() error
}

// parallelism, showStats and usePOR are the exploration knobs shared by
// every experiment that walks a state space (-parallel / -stats / -por
// flags); obsSink and snapshotEvery carry the streaming telemetry stack
// (-progress / -trace / -serve / -snapshot-every) into the same
// explorations.
var (
	parallelism    int
	showStats      bool
	usePOR         bool
	verifyAliasing int
	obsSink        obs.Sink
	snapshotEvery  time.Duration
	storeCfg       store.Config
	benchBig       bool
	sched          string
)

// statsSink returns a fresh telemetry sink when -stats is set (which also
// routes exploration through the engine even at parallelism 1) or when a
// non-default store backend is selected (its figures are worth a line even
// without -stats), else nil.
func statsSink() *engine.Stats {
	if !showStats && storeCfg.ResolvedKind() == store.Mem {
		return nil
	}
	return new(engine.Stats)
}

// printStats reports an exploration's telemetry when -stats is set, plus
// the store backend's figures whenever a non-default backend ran.
func printStats(st *engine.Stats) {
	if st == nil {
		return
	}
	if showStats {
		fmt.Printf("    [engine] %s\n", st)
		if line := st.PhaseString(); line != "" {
			fmt.Printf("    [phases] %s\n", line)
		}
	}
	if line := st.StoreString(); line != "" {
		fmt.Printf("    [store]  %s\n", line)
	}
}

func main() {
	os.Exit(run())
}

// run carries main's body so that deferred profile writers execute before
// the process exits with a status code.
func run() int {
	// Subcommands dispatch before flag parsing so their flag sets stay
	// independent of the experiment-runner flags.
	if len(os.Args) > 1 && os.Args[1] == "fuzz" {
		return runFuzz(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "trace-lint" {
		return runTraceLint(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "report" {
		return runReport(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "trace-diff" {
		return runTraceDiff(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "run" {
		return runLive(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "bench-compare" {
		return runBenchCompare(os.Args[2:])
	}
	list := flag.Bool("list", false, "list experiments and exit")
	benchJSON := flag.Bool("bench-json", false,
		"run the performance suite (full vs quotient vs POR explorations, seq vs parallel synth) and record a JSON run")
	benchOut := flag.String("bench-out", "BENCH_hundred.json",
		"bench record file for -bench-json: the run is appended to its history; empty writes a single-run record to stdout")
	flag.BoolVar(&benchBig, "bench-big", false,
		"with -bench-json: also run the budget-bounded big instances (wait-quorum n=5, async-lcr n=8) — minutes of runtime; pair with -store spill -max-store-bytes")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.IntVar(&parallelism, "parallel", 0,
		"exploration worker count (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	flag.BoolVar(&showStats, "stats", false, "print exploration engine telemetry for state-space experiments")
	flag.BoolVar(&usePOR, "por", false,
		"apply ample-set partial-order reduction to the state-space experiments that carry independence relations; verdicts are identical either way")
	flag.IntVar(&verifyAliasing, "verify-aliasing", 0,
		"debug falsifier: re-expand every Nth state over poisoned scratch buffers to catch expansions that retain emitted slices (0 = off)")
	progress := flag.Bool("progress", false, "stream live exploration progress lines to stderr")
	tracePath := flag.String("trace", "", "write a JSONL run trace of every exploration to this file (\"-\" for stdout)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /debug/pprof on this address (e.g. :8080) for the life of the run")
	flag.DurationVar(&snapshotEvery, "snapshot-every", 0,
		"timer-driven snapshot period for -progress/-trace/-serve (0 = 1s default, negative = barrier events only)")
	storeKind := flag.String("store", "mem",
		"visited-set backend for state-space experiments: mem | spill | bitstate (bitstate is lossy: verdicts downgrade to \"no violation found\")")
	maxStoreBytes := flag.Int64("max-store-bytes", 0,
		"spill backend's resident-payload budget in bytes (0 = 256 MiB default)")
	flag.StringVar(&sched, "sched", "",
		"exploration scheduler: barrier (default: per-level fork/join) | steal (persistent work-stealing pool; faster on deep-narrow graphs); results are identical either way")
	flag.Parse()
	switch sched {
	case "", "barrier", "steal":
	default:
		fmt.Fprintf(os.Stderr, "hundred: unknown -sched %q (want barrier or steal)\n", sched)
		return 2
	}
	var err error
	if storeCfg, err = store.ParseFlags(*storeKind, *maxStoreBytes); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sink, obsCleanup, err := obs.SetupCLI(obs.CLIConfig{
		Tool: "hundred", Progress: *progress, TracePath: *tracePath, ServeAddr: *serveAddr,
		Options: map[string]string{
			"parallel": strconv.Itoa(parallelism),
			"por":      strconv.FormatBool(usePOR),
			"store":    string(storeCfg.ResolvedKind()),
			"sched":    sched,
			"args":     strings.Join(flag.Args(), " "),
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	obsSink = sink
	defer obsCleanup()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *benchJSON {
		if err := runBenchJSON(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%s  %s\n", e.id, e.title)
		}
		return 0
	}
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	failed := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Printf("  ERROR: %v\n", err)
			failed++
		}
		fmt.Println()
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func experiments() []experiment {
	return []experiment{
		{"E01", "fair mutex through one TAS variable: 2 values impossible (exhaustion)", e01},
		{"E02", "mutex value requirements across algorithms", e02},
		{"E03", "single RW register mutex impossible (exhaustion)", e03},
		{"E04", "FIFO fairness costs Θ(n²) shared-memory contents", e04},
		{"E05", "Byzantine agreement: n=3t impossible, n>3t works", e05},
		{"E06", "low connectivity defeats any agreement protocol", e06},
		{"E07", "two-faced clock fault defeats 3-process synchronization", e07},
		{"E08", "t+1 round lower bound (chain argument) and FloodSet", e08},
		{"E09", "approximate agreement convergence vs bounds", e09},
		{"E10", "authenticated agreement message growth (Ω(nt) shape)", e10},
		{"E11", "FLP horns for three asynchronous protocols", e11},
		{"E12", "Two Generals chain argument", e12},
		{"E13", "Ben-Or randomized consensus terminates w.p. 1", e13},
		{"E14", "2PC commit uses exactly 2n-2 messages (failure-free)", e14},
		{"E15", "sessions: synchronous vs asynchronous time gap", e15},
		{"E16", "clock skew: ε(1−1/n) tight bound", e16},
		{"E17", "anonymous ring election impossible (symmetry)", e17},
		{"E18", "ring election message complexity landscape", e18},
		{"E19", "Itai–Rodeh randomized anonymous election", e19},
		{"E20", "consensus numbers: RW register vs RMW object", e20},
		{"E21", "data link: ABP works; crash/replay break bounded headers", e21},
	}
}

func e01() error {
	neg, err := synth.SearchTASMutex(synth.TASSearchConfig{
		Values: 2, TryStates: 2, RequireLockoutFree: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  2-valued search: tables=%d pruned=%d pairs=%d exclusion+progress=%d lockout-free=%d\n",
		neg.TablesEnumerated, neg.TablesPruned, neg.PairsChecked, neg.PassedProgress, neg.Passed)
	rep, err := sharedmem.CheckMutex(sharedmem.NewHandoffLock(), sharedmem.CheckMutexOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("  handoff lock (4 values, 1 variable): exclusion=%v progress=%v lockout-free=%v\n",
		rep.MutualExclusion, rep.Progress, rep.LockoutFree)
	return nil
}

func e02() error {
	algs := []sharedmem.Algorithm{
		sharedmem.NewTASLock(2), sharedmem.NewHandoffLock(),
		sharedmem.NewPeterson2(), sharedmem.NewTicketLock(3),
	}
	fmt.Printf("  %-26s %8s %9s %12s %7s\n", "algorithm", "values", "progress", "lockout-free", "states")
	for _, a := range algs {
		st := statsSink()
		rep, err := sharedmem.CheckMutex(a, sharedmem.CheckMutexOptions{
			Parallelism: parallelism, Stats: st, Sink: obsSink, SnapshotEvery: snapshotEvery,
			Store: storeCfg, Sched: sched,
		})
		if err != nil {
			return err
		}
		total := 0
		for _, v := range rep.ValuesUsed {
			total += v
		}
		fmt.Printf("  %-26s %8d %9v %12v %7d\n", rep.Algorithm, total, rep.Progress, rep.LockoutFree, rep.States)
		printStats(st)
	}
	return nil
}

func e03() error {
	for _, v := range []int{2, 3} {
		res, err := synth.SearchRWMutex(synth.RWSearchConfig{Values: v, TryStates: 2, Symmetric: v == 3})
		if err != nil {
			return err
		}
		fmt.Printf("  RW register, %d values: tables=%d pairs=%d passing=%d (expected 0)\n",
			v, res.TablesEnumerated, res.PairsChecked, res.Passed)
	}
	return nil
}

func e04() error {
	fmt.Printf("  %-4s %18s %12s\n", "n", "combined values", "(n+1)^2")
	for _, n := range []int{2, 3, 4, 5} {
		st := statsSink()
		rep, err := sharedmem.CheckMutex(sharedmem.NewTicketLock(n), sharedmem.CheckMutexOptions{
			Parallelism: parallelism, Stats: st, Sink: obsSink, SnapshotEvery: snapshotEvery,
			Store: storeCfg, Sched: sched,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-4d %18d %12d\n", n, rep.CombinedValues, (n+1)*(n+1))
		printStats(st)
	}
	return nil
}

func e05() error {
	e := &consensus.EIG{Procs: 3, MaxFaults: 1}
	v, err := scenario.SpliceCheck(e, 1, e.Rounds())
	if err != nil {
		return err
	}
	fmt.Printf("  n=3 t=1: %d scenario violations, counterexample reproduced=%v\n",
		len(v.Violations), v.CounterexampleChecked)
	for _, viol := range v.Violations {
		fmt.Printf("    broke %s\n", viol.Requirement)
	}
	e4 := &consensus.EIG{Procs: 4, MaxFaults: 1}
	res, err := rounds.Run(e4, []int{0, 1, 1, 0}, rounds.NoFaults{}, rounds.RunOptions{Rounds: e4.Rounds()})
	if err != nil {
		return err
	}
	fmt.Printf("  n=4 t=1 failure-free decisions: %v (agreement holds)\n", res.Decisions)
	return nil
}

func e06() error {
	line, err := rounds.NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		return err
	}
	f := &consensus.FloodSet{Procs: 3, MaxFaults: 1}
	v, err := scenario.CutReplayCheck(f, line, []int{1}, f.Rounds())
	if err != nil {
		return err
	}
	fmt.Printf("  line A-b-C (connectivity 1, t=1): decisions=%v\n  violated: %s\n", v.Decisions, v.Violation)
	return nil
}

func e07() error {
	net := clocks.Network{Base: 1, Epsilon: 0.5}
	e := clocks.UniformExecution(3, net)
	obs := clocks.Observe(e)
	obs[0][2].ReceivedAt -= 10
	obs[1][2].ReceivedAt += 10
	a0 := e.Offsets[0] + (clocks.LundeliusLynch{}).Correction(0, obs[0], net)
	a1 := e.Offsets[1] + (clocks.LundeliusLynch{}).Correction(1, obs[1], net)
	skew := a1 - a0
	if skew < 0 {
		skew = -skew
	}
	fmt.Printf("  honest skew bound: %.4f; two-faced fault drives honest skew to %.4f\n",
		clocks.TheoreticalBound(3, net), skew)
	return nil
}

func e08() error {
	fmt.Printf("  %-14s %12s %10s\n", "(n,t,k)", "executions", "chain?")
	for _, c := range [][3]int{{3, 1, 1}, {3, 1, 2}, {4, 2, 2}, {3, 2, 2}} {
		res, err := consensus.ChainLowerBound(c[0], c[1], c[2])
		if err != nil {
			return err
		}
		fmt.Printf("  (%d,%d,%d)%7s %12d %10v\n", c[0], c[1], c[2], "", res.Executions, res.ChainFound)
	}
	count, err := consensus.VerifyFloodSetExhaustively(3, 2)
	if err != nil {
		return err
	}
	fmt.Printf("  FloodSet verified over %d executions at t+1 rounds\n", count)
	// The Dwork–Moses epistemic reading: "some input is 1" becomes common
	// knowledge at the all-ones execution exactly at k = t+1.
	someOne := func(e knowledge.Execution) bool {
		for _, v := range e.Inputs {
			if v == 1 {
				return true
			}
		}
		return false
	}
	for _, k := range []int{1, 2} {
		u, err := knowledge.NewCrashUniverse(3, 1, k)
		if err != nil {
			return err
		}
		e, _ := u.Find([]int{1, 1, 1})
		lvl := u.KnowledgeLevel(e, someOne, 64)
		fmt.Printf("  knowledge at k=%d (t=1): E^j depth %d, common knowledge %v\n",
			k, lvl, u.CommonKnowledge(e, someOne))
	}
	return nil
}

func e09() error {
	inputs := []int{0, 1_000_000, 500_000, 250_000, 750_000}
	fmt.Printf("  %-4s %12s %16s %14s\n", "k", "ratio", "(t/n)^k", "(t/nk)^k")
	for _, k := range []int{1, 2, 3, 4} {
		rep, err := consensus.MeasureApprox(5, 1, k, inputs, consensus.TwoFacedExtremes(4, 1_000_000))
		if err != nil {
			return err
		}
		fmt.Printf("  %-4d %12.6f %16.6f %14.8f\n", k, rep.Ratio, rep.RoundByRoundBound, rep.LowerBound)
	}
	return nil
}

func e10() error {
	fmt.Printf("  %-4s %-4s %12s %8s\n", "t", "n", "messages", "n*t")
	for _, t := range []int{1, 2, 3} {
		n := 2*t + 2
		ba := consensus.NewAuthBA(n, t, 0, 0, 3)
		inputs := make([]int, n)
		inputs[0] = 1
		res, err := rounds.Run(ba, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: ba.Rounds()})
		if err != nil {
			return err
		}
		fmt.Printf("  %-4d %-4d %12d %8d\n", t, n, res.MessagesSent, n*t)
	}
	// Message-size axis: EIG's relayed trees vs phase-king's constant
	// messages at n=9, t=2.
	inputs9 := make([]int, 9)
	for i := range inputs9 {
		inputs9[i] = i % 2
	}
	eigBytes, pkBytes, err := consensus.CompareMessageSizes(9, 2, inputs9)
	if err != nil {
		return err
	}
	fmt.Printf("  message bytes at n=9 t=2: EIG %d vs phase-king %d\n", eigBytes, pkBytes)
	return nil
}

func e11() error {
	for _, p := range []flp.Protocol{flp.NewWaitAll(3), flp.NewWaitQuorum(3), flp.NewAdoptSwap(2)} {
		st := statsSink()
		opts := flp.AnalyzeOptions{
			Parallelism: parallelism, Stats: st, Sink: obsSink, SnapshotEvery: snapshotEvery,
			Store: storeCfg, VerifyAliasing: verifyAliasing, Sched: sched,
		}
		if usePOR {
			opts.Independent = flp.DeliveryIndependence(p)
			opts.Visible = flp.DecisionVisibility(p)
			opts.VerifyPOR = 64
		}
		rep, err := flp.Analyze(p, opts)
		if err != nil {
			return err
		}
		fmt.Printf("  %s (states=%d, bivalent=%d)\n", flp.DescribeHorn(rep), rep.States, rep.BivalentConfigs)
		printStats(st)
	}
	return nil
}

func e12() error {
	for _, depth := range []int{1, 2, 4} {
		rep, err := datalink.ChainCheck(&datalink.Handshake{Depth: depth}, 1, 1)
		if err != nil {
			return err
		}
		fmt.Printf("  handshake depth %d: chain length %d, horn: %s\n", depth, rep.ChainLength, rep.Horn)
	}
	return nil
}

func e13() error {
	rep, err := async.MeasureBenOr(5, 2, 50, []int{0, 1, 0, 1, 1}, nil, 99)
	if err != nil {
		return err
	}
	fmt.Printf("  runs=%d terminated=%d agreed=%d avg deliveries=%.1f\n",
		rep.Runs, rep.Terminated, rep.Agreed, float64(rep.TotalDeliveries)/float64(rep.Runs))
	return nil
}

func e14() error {
	fmt.Printf("  %-4s %10s %8s\n", "n", "messages", "2n-2")
	for _, n := range []int{3, 5, 8} {
		c := &consensus.TwoPhaseCommit{Procs: n}
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = spec.Commit
		}
		res, err := rounds.Run(c, inputs, rounds.NoFaults{}, rounds.RunOptions{Rounds: 2})
		if err != nil {
			return err
		}
		fmt.Printf("  %-4d %10d %8d\n", n, res.MessagesSent, 2*n-2)
	}
	// The blocking/non-blocking separation under a round-2 coordinator
	// crash.
	n := 4
	all := []int{spec.Commit, spec.Commit, spec.Commit, spec.Commit}
	crash := func() *rounds.CrashSchedule {
		return &rounds.CrashSchedule{Crashes: map[int]rounds.Crash{
			0: {Round: 2, DeliverTo: map[int]bool{}},
		}}
	}
	two := &consensus.TwoPhaseCommit{Procs: n}
	res2, err := rounds.Run(two, all, crash(), rounds.RunOptions{Rounds: two.Rounds()})
	if err != nil {
		return err
	}
	three := &consensus.ThreePhaseCommit{Procs: n}
	res3, err := rounds.Run(three, all, crash(), rounds.RunOptions{Rounds: three.Rounds()})
	if err != nil {
		return err
	}
	fmt.Printf("  coordinator crash at round 2: 2PC decisions %v (blocked), 3PC decisions %v (non-blocking)\n",
		res2.Decisions, res3.Decisions)
	return nil
}

func e15() error {
	fmt.Printf("  %-10s %10s %12s %12s\n", "(n,s)", "sync time", "async time", "(s-1)d bound")
	for _, c := range [][2]int{{4, 2}, {6, 3}, {8, 5}} {
		n, s := c[0], c[1]
		syncRes := sessions.RunSynchronous(n, s)
		asyncRes, err := sessions.RunTokenBarrier(n, s)
		if err != nil {
			return err
		}
		fmt.Printf("  (%d,%d)%5s %10.0f %12.0f %12.0f\n", n, s, "",
			syncRes.Time, asyncRes.Time, sessions.LowerBound(s, n-1))
	}
	return nil
}

func e16() error {
	net := clocks.Network{Base: 1, Epsilon: 0.5}
	fmt.Printf("  %-4s %16s %14s\n", "n", "worst-case skew", "ε(1−1/n)")
	for _, n := range []int{2, 3, 4, 8, 16} {
		adj, err := clocks.AdjustedClocks(clocks.LundeliusLynch{}, clocks.WorstCaseExecution(n, net), net)
		if err != nil {
			return err
		}
		fmt.Printf("  %-4d %16.6f %14.6f\n", n, clocks.MaxSkew(adj), clocks.TheoreticalBound(n, net))
	}
	return nil
}

func e17() error {
	rep, err := ring.CheckAnonymousSymmetry(ring.NewCountdownProtocol(3), 5, 0, 10)
	if err != nil {
		return err
	}
	fmt.Printf("  countdown protocol: all %d processes declared leadership in round %d\n", 5, rep.RoundOfViolation)
	rep, err = ring.CheckAnonymousSymmetry(ring.NewForeverProtocol(), 5, 0, 100)
	if err != nil {
		return err
	}
	fmt.Printf("  cautious protocol: symmetric and undecided after %d rounds\n", rep.RoundsRun)
	return nil
}

func e18() error {
	fmt.Printf("  %-6s %12s %12s %14s %12s %16s\n", "n", "LCR worst", "LCR best", "HS (worst ids)", "Peterson", "var-speeds msgs")
	for _, n := range []int{8, 16, 32, 64} {
		worst, err := ring.RunLCR(ring.DescendingIDs(n))
		if err != nil {
			return err
		}
		best, err := ring.RunLCR(ring.AscendingIDs(n))
		if err != nil {
			return err
		}
		hs, err := ring.RunHS(ring.DescendingIDs(n))
		if err != nil {
			return err
		}
		pet, err := ring.RunPetersonUnidirectional(ring.DescendingIDs(n))
		if err != nil {
			return err
		}
		small := make([]int, n)
		for i := range small {
			small[i] = (i + 1) % n // min id 0 sits at position n-1
		}
		vs, err := ring.RunVariableSpeeds(small)
		if err != nil {
			return err
		}
		fmt.Printf("  %-6d %12d %12d %14d %12d %16d\n",
			n, worst.Messages, best.Messages, hs.Messages, pet.Messages, vs.Messages)
	}
	return nil
}

func e19() error {
	rng := rand.New(rand.NewSource(11))
	var phases, msgs int
	runs := 100
	for i := 0; i < runs; i++ {
		res, err := ring.RunItaiRodeh(8, 8, rng, 500)
		if err != nil {
			return err
		}
		phases += res.Phases
		msgs += res.Messages
	}
	fmt.Printf("  n=8, %d runs: avg phases %.2f, avg messages %.1f\n",
		runs, float64(phases)/float64(runs), float64(msgs)/float64(runs))
	return nil
}

func e20() error {
	rw, err := registers.SearchConsensus(registers.ConsSearchConfig{
		Kind: registers.RWRegister, Values: 3, LocalStates: 2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  RW register: %d tables, %d viable, %d pairs, witness=%v\n",
		rw.TablesEnumerated, rw.TablesViable, rw.PairsChecked, rw.Found())
	rmw, err := registers.SearchConsensus(registers.ConsSearchConfig{
		Kind: registers.RMWObject, Values: 3, LocalStates: 2, Symmetric: true, StopAtFirst: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  RMW object:  %d tables, %d viable, witness=%v (consensus number >= 2)\n",
		rmw.TablesEnumerated, rmw.TablesViable, rmw.Found())
	return nil
}

func e21() error {
	msgs := []string{"m1", "m2", "m3", "m4"}
	res, err := datalink.RunABP(msgs, datalink.Script{
		DropData: func(step int) bool { return step%3 == 0 },
	}, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("  ABP over lossy channel: delivered %d/%d in order with %d packets\n",
		len(res.Delivered), len(msgs), res.DataPackets)
	crash, err := datalink.RunABP([]string{"a", "b"}, datalink.Script{
		DropAck: func(step int) bool { return step == 1 }, CrashReceiverAt: 2,
	}, 100)
	if err != nil {
		return err
	}
	fmt.Printf("  receiver crash: delivered %v (duplicate = impossibility witness)\n", crash.Delivered)
	steal, err := datalink.RunABP([]string{"m1", "m2", "m3"}, datalink.Script{ReplayAt: 3, ReplayIndex: 0}, 100)
	if err != nil {
		return err
	}
	fmt.Printf("  packet replay: delivered %v (phantom = impossibility witness)\n", steal.Delivered)
	// The exhaustive counterpart: every loss/retransmission schedule at
	// once, over the cyclic async ABP state space.
	abp, err := datalink.NewAsyncABP(4)
	if err != nil {
		return err
	}
	st := statsSink()
	opts := core.ExploreOptions{
		Parallelism: parallelism, Sink: obsSink, SnapshotEvery: snapshotEvery,
		Store: storeCfg, VerifyAliasing: verifyAliasing, Sched: sched,
	}
	if st != nil {
		opts.Stats = st
	}
	if usePOR {
		opts.Independent = abp.Independence()
		opts.Visible = abp.ProgressVisibility()
		opts.VerifyPOR = 8
	}
	g, err := abp.CheckDelivery(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  async ABP m=4: %d states over every loss schedule, delivery exact-once in order\n", g.Len())
	printStats(st)
	return nil
}
