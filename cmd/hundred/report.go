package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// runReport is the `hundred report` subcommand: it renders a JSONL run
// trace (written with -trace) into a markdown post-hoc report — final
// totals per run (byte-equal to the run's Stats, since run_end snapshots
// are built from Stats.Snapshot), throughput over time, the per-worker
// phase breakdown, reduction attribution, the store spill timeline, and
// the end-cause explanation. The trace is validated first, so a report is
// also a lint pass.
func runReport(args []string) int {
	fs := flag.NewFlagSet("hundred report", flag.ContinueOnError)
	out := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hundred report [-o FILE] TRACE")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sum, err := obs.ValidateTrace(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
		return 1
	}
	m, evs, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	writeReport(w, path, m, sum, evs)
	return 0
}

// writeReport renders the whole markdown document.
func writeReport(w io.Writer, path string, m obs.Manifest, sum *obs.TraceSummary, evs []obs.Event) {
	fmt.Fprintf(w, "# Run report: %s\n\n", path)
	fmt.Fprintf(w, "- tool: `%s` (schema v%d, git `%s`", m.Tool, m.SchemaVersion, orDash(m.Git))
	if m.Started != "" {
		fmt.Fprintf(w, ", started %s", m.Started)
	}
	fmt.Fprintf(w, ")\n")
	if len(m.Options) > 0 {
		keys := make([]string, 0, len(m.Options))
		for k := range m.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var opts []string
		for _, k := range keys {
			if v := m.Options[k]; v != "" {
				opts = append(opts, fmt.Sprintf("%s=%s", k, v))
			}
		}
		if len(opts) > 0 {
			fmt.Fprintf(w, "- options: `%s`\n", strings.Join(opts, " "))
		}
	}
	fmt.Fprintf(w, "- runs: %d exploration, %d runtime; %d events; digest `%s`\n",
		sum.Runs, sum.RTRuns, sum.Events, sum.Digest)

	// Split the event stream into runs (ValidateTrace guarantees clean
	// sequential nesting) and render each.
	runNo := 0
	for i := 0; i < len(evs); i++ {
		switch evs[i].Kind {
		case obs.KindRunStart:
			end := i + 1
			for end < len(evs) && evs[end].Kind != obs.KindRunEnd {
				end++
			}
			runNo++
			reportExploreRun(w, runNo, evs[i:end+1])
			i = end
		case obs.KindRTStart:
			end := i + 1
			for end < len(evs) && evs[end].Kind != obs.KindRTEnd {
				end++
			}
			runNo++
			reportRuntimeRun(w, runNo, evs[i:end+1])
			i = end
		}
	}
}

// reportExploreRun renders one exploration run (run_start .. run_end).
func reportExploreRun(w io.Writer, n int, run []obs.Event) {
	cfg := run[0].Config
	final := run[len(run)-1].Snapshot
	if cfg == nil || final == nil {
		return
	}
	fmt.Fprintf(w, "\n## Run %d: exploration (mode=%s, workers=%d, store=%s, sched=%s)\n\n",
		n, cfg.Mode(), cfg.Workers, orDefault(cfg.Store, "mem"), orDefault(cfg.Sched, "barrier"))

	fmt.Fprintf(w, "### Final totals\n\n")
	fmt.Fprintf(w, "| states | edges | depth | peak frontier | expansions | dedup hits | elapsed | states/s |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
	fmt.Fprintf(w, "| %d | %d | %d | %d | %d | %d | %s | %.0f |\n\n",
		final.States, final.Edges, final.Depth, final.PeakFrontier,
		final.Expansions, final.DedupHits,
		final.Elapsed.Round(time.Microsecond), final.StatesPerSec())

	// End cause: the truncation/limit story, spelled out.
	switch {
	case final.Truncated:
		fmt.Fprintf(w, "**End cause:** state limit tripped — the store crossed %d states while "+
			"expanding level %d, the engine finished the level in flight (truncation is "+
			"level-granular so it stays canonical at any worker count), and replay cut the "+
			"result back to the first %d states.\n\n", cfg.MaxStates, final.Depth, final.States)
	default:
		fmt.Fprintf(w, "**End cause:** state space exhausted — the frontier emptied at depth %d "+
			"with %d states, below the %d-state limit.\n\n", final.Depth, final.States, cfg.MaxStates)
	}

	reportThroughput(w, run)
	reportReduction(w, cfg, final)
	reportPhases(w, final)
	reportSpill(w, run, final)
}

// reportThroughput renders the throughput-over-time table from the run's
// level, snapshot and run_end events (at most maxRows rows, sampled evenly).
func reportThroughput(w io.Writer, run []obs.Event) {
	type point struct {
		ev   obs.Event
		snap *obs.ProgressSnapshot
	}
	var pts []point
	for _, ev := range run {
		switch ev.Kind {
		case obs.KindLevel, obs.KindSnapshot, obs.KindTruncated, obs.KindRunEnd:
			if ev.Snapshot != nil {
				pts = append(pts, point{ev, ev.Snapshot})
			}
		}
	}
	if len(pts) == 0 {
		return
	}
	const maxRows = 24
	idx := sampleIndices(len(pts), maxRows)
	fmt.Fprintf(w, "### Throughput over time\n\n")
	fmt.Fprintf(w, "| elapsed | event | states | depth | frontier | states/s (window) | states/s (avg) |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|\n")
	prev := obs.ProgressSnapshot{}
	for _, i := range idx {
		p := pts[i]
		rate := p.snap.Rate(prev)
		fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %.0f | %.0f |\n",
			p.snap.Elapsed.Round(time.Millisecond), p.ev.Kind, p.snap.States,
			p.snap.Depth, p.snap.Frontier, rate, p.snap.StatesPerSec())
		prev = *p.snap
	}
	if len(idx) < len(pts) {
		fmt.Fprintf(w, "\n(%d of %d progress events shown, sampled evenly)\n", len(idx), len(pts))
	}
	fmt.Fprintln(w)
}

// reportReduction renders the reduction-attribution section: how much of
// the raw interleaving space the canonicalizer and POR each removed.
func reportReduction(w io.Writer, cfg *obs.RunConfig, final *obs.ProgressSnapshot) {
	if !cfg.Canon && !cfg.POR {
		return
	}
	fmt.Fprintf(w, "### Reduction attribution\n\n")
	if cfg.Canon {
		red := final.ReductionFactor()
		fmt.Fprintf(w, "- **Symmetry (canon):** %d raw states collapsed into %d orbit "+
			"representatives (%.2fx, a lower bound on the full-space reduction); the "+
			"canonicalizer remapped %d of the generated successors.\n",
			final.RawStates, final.States, red, final.CanonHits)
	}
	if cfg.POR {
		branch := 0.0
		if final.Edges > 0 {
			branch = float64(uint64(final.Edges)+final.DeferredActions) / float64(final.Edges)
		}
		fmt.Fprintf(w, "- **Partial order (POR):** ample sets pruned %d enabled actions across "+
			"%d ample-reduced expansions — %.2fx branching reduction before counting the "+
			"interleaving subtrees each deferred action would have spawned.\n",
			final.DeferredActions, final.AmpleStates, branch)
	}
	fmt.Fprintln(w)
}

// reportPhases renders the per-worker phase breakdown from the final
// snapshot's profile (absent when the producer ran without profiling, or
// predates it).
func reportPhases(w io.Writer, final *obs.ProgressSnapshot) {
	if final.Phases == nil {
		return
	}
	fmt.Fprintf(w, "### Phase breakdown\n\n")
	pct := func(ns, total int64) string {
		if total <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(ns)/float64(total))
	}
	if len(final.WorkerPhases) > 0 {
		fmt.Fprintf(w, "| worker | total | expand | barrier | steal | handoff | idle |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|\n")
		for i, p := range final.WorkerPhases {
			t := p.TotalNs()
			fmt.Fprintf(w, "| %d | %s | %s | %s | %s | %s | %s |\n",
				i, time.Duration(t).Round(time.Microsecond),
				pct(p.ExpandNs, t), pct(p.BarrierWaitNs, t), pct(p.StealNs, t),
				pct(p.HandoffNs, t), pct(p.IdleNs, t))
		}
		fmt.Fprintln(w)
	}
	agg := *final.Phases
	fmt.Fprintf(w, "Aggregate (all workers + coordinator): expand %s, barrier %s, store I/O %s, "+
		"replay %s, steal %s, handoff %s, idle %s.\n",
		fmtNs(agg.ExpandNs), fmtNs(agg.BarrierWaitNs), fmtNs(agg.StoreIONs),
		fmtNs(agg.ReplayNs), fmtNs(agg.StealNs), fmtNs(agg.HandoffNs), fmtNs(agg.IdleNs))
	if agg.SampledStates > 0 {
		fmt.Fprintf(w, "\nFine sampling (1 in 64 states, n=%d): canonicalization %.1f%% and "+
			"hash+intern %.1f%% of sampled expansion time.",
			agg.SampledStates, 100*agg.CanonFrac(), 100*agg.InternFrac())
		if final.ExpandLat != nil && final.ExpandLat.Count > 0 {
			el := final.ExpandLat
			fmt.Fprintf(w, " Sampled per-state expansion latency: p50 %s, p99 %s, mean %s.",
				fmtNs(el.QuantileNs(0.5)), fmtNs(el.QuantileNs(0.99)), fmtNs(int64(el.MeanNs())))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// reportSpill renders the store spill timeline for spill-backed runs and
// the page-cache figures.
func reportSpill(w io.Writer, run []obs.Event, final *obs.ProgressSnapshot) {
	if final.StoreBytesSpilled == 0 && final.StoreSegmentReads == 0 && final.StorePageCacheHits == 0 {
		return
	}
	fmt.Fprintf(w, "### Store spill timeline\n\n")
	fmt.Fprintf(w, "| elapsed | states | bytes spilled | segments | seg reads | cache hits |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
	var lastSpilled int64 = -1
	rows := 0
	for _, ev := range run {
		s := ev.Snapshot
		if s == nil || s.StoreBytesSpilled == lastSpilled {
			continue
		}
		lastSpilled = s.StoreBytesSpilled
		fmt.Fprintf(w, "| %s | %d | %s | %d | %d | %d |\n",
			s.Elapsed.Round(time.Millisecond), s.States, fmtBytes(s.StoreBytesSpilled),
			s.StoreSegments, s.StoreSegmentReads, s.StorePageCacheHits)
		rows++
	}
	if rows == 0 {
		fmt.Fprintf(w, "| %s | %d | %s | %d | %d | %d |\n",
			final.Elapsed.Round(time.Millisecond), final.States, fmtBytes(final.StoreBytesSpilled),
			final.StoreSegments, final.StoreSegmentReads, final.StorePageCacheHits)
	}
	if total := final.StoreSegmentReads + final.StorePageCacheHits; total > 0 {
		fmt.Fprintf(w, "\nPage cache: %d hits / %d spilled-payload reads (%.1f%% hit rate).\n",
			final.StorePageCacheHits, total, 100*float64(final.StorePageCacheHits)/float64(total))
	}
	if final.StoreReadLat != nil && final.StoreReadLat.Count > 0 {
		rl := final.StoreReadLat
		fmt.Fprintf(w, "\nSegment reads: n=%d, p50 %s, p99 %s.", rl.Count, fmtNs(rl.QuantileNs(0.5)), fmtNs(rl.QuantileNs(0.99)))
	}
	if final.StoreWriteLat != nil && final.StoreWriteLat.Count > 0 {
		wl := final.StoreWriteLat
		fmt.Fprintf(w, " Segment writes: n=%d, p50 %s, p99 %s.", wl.Count, fmtNs(wl.QuantileNs(0.5)), fmtNs(wl.QuantileNs(0.99)))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// reportRuntimeRun renders one live runtime run (rt_start .. rt_end).
func reportRuntimeRun(w io.Writer, n int, run []obs.Event) {
	cfg := run[0].RTConfig
	sum := run[len(run)-1].RTSummary
	if cfg == nil || sum == nil {
		return
	}
	fmt.Fprintf(w, "\n## Run %d: live runtime (workload=%s, procs=%d, seed=%d)\n\n",
		n, cfg.Workload, cfg.Procs, cfg.Seed)
	fmt.Fprintf(w, "Adversary: drop=%g dup=%g crash=%g delay=%d restart-after=%d, "+
		"batch width %d, budget %d events.\n\n",
		cfg.Drop, cfg.Dup, cfg.Crash, cfg.Delay, cfg.RestartAfter, cfg.Batch, cfg.MaxEvents)
	fmt.Fprintf(w, "| events | deliveries | local steps | drops | dups | crashes | restarts | pending | halted |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|\n")
	fmt.Fprintf(w, "| %d | %d | %d | %d | %d | %d | %d | %d | %d |\n\n",
		sum.Events, sum.Deliveries, sum.LocalSteps, sum.Drops, sum.Dups,
		sum.Crashes, sum.Restarts, sum.Pending, sum.Halted)
	switch {
	case sum.Stopped:
		fmt.Fprintf(w, "**End cause:** goal reached — a process reported the run's objective complete.\n")
	case sum.Quiesced:
		fmt.Fprintf(w, "**End cause:** quiesced — nothing pending and nothing schedulable.\n")
	case sum.Stalled:
		fmt.Fprintf(w, "**End cause:** stalled — only crash-starved actions remained.\n")
	case sum.Budget:
		fmt.Fprintf(w, "**End cause:** budget — the %d-event schedule limit ran out.\n", cfg.MaxEvents)
	}
	if sum.BatchLat != nil && sum.BatchLat.Count > 0 {
		bl := sum.BatchLat
		fmt.Fprintf(w, "\nBatch dispatch latency (%d rounds): p50 %s, p99 %s, mean %s.\n",
			bl.Count, fmtNs(bl.QuantileNs(0.5)), fmtNs(bl.QuantileNs(0.99)), fmtNs(int64(bl.MeanNs())))
	}
}

// sampleIndices picks up to max indices from [0, n), always keeping the
// first and last, evenly spaced in between.
func sampleIndices(n, max int) []int {
	if n <= max {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, max)
	for i := 0; i < max; i++ {
		idx = append(idx, i*(n-1)/(max-1))
	}
	return idx
}

// fmtNs renders a nanosecond count as a rounded duration.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}

// fmtBytes renders n in binary units with one decimal.
func fmtBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
