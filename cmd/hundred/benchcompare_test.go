package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func benchFixture(t *testing.T, runs ...benchRecord) string {
	t.Helper()
	data, err := json.Marshal(benchFile{SchemaVersion: benchSchemaVersion, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, "bench.json", string(data))
}

func TestBenchCompareOK(t *testing.T) {
	path := benchFixture(t,
		benchRecord{Timestamp: "a", Explorations: []explorationBench{
			{System: "grid", FullStates: 100, FullStatesPerSec: 1000},
			{System: "retired", FullStates: 5, FullStatesPerSec: 50},
		}},
		benchRecord{Timestamp: "b", Explorations: []explorationBench{
			{System: "grid", FullStates: 100, FullStatesPerSec: 800}, // -20%: within gate
			{System: "brand-new", FullStates: 7, FullStatesPerSec: 70},
		}},
	)
	if code := runBenchCompare([]string{"-file", path}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestBenchCompareThroughputRegression(t *testing.T) {
	path := benchFixture(t,
		benchRecord{Explorations: []explorationBench{{System: "grid", FullStates: 100, FullStatesPerSec: 1000, FullSeconds: 1}}},
		benchRecord{Explorations: []explorationBench{{System: "grid", FullStates: 100, FullStatesPerSec: 500, FullSeconds: 2}}},
	)
	if code := runBenchCompare([]string{"-file", path}); code != 1 {
		t.Fatalf("50%% regression: exit = %d, want 1", code)
	}
	// A looser threshold lets the same file pass.
	if code := runBenchCompare([]string{"-file", path, "-threshold", "0.6"}); code != 0 {
		t.Fatalf("60%% threshold: exit = %d, want 0", code)
	}
	// Sub-floor rows are too short to time: the same regression on a
	// 2ms workload is jitter, not signal, and must not gate.
	path = benchFixture(t,
		benchRecord{Explorations: []explorationBench{{System: "grid", FullStates: 100, FullStatesPerSec: 1000, FullSeconds: 0.002}}},
		benchRecord{Explorations: []explorationBench{{System: "grid", FullStates: 100, FullStatesPerSec: 500, FullSeconds: 0.002}}},
	)
	if code := runBenchCompare([]string{"-file", path}); code != 0 {
		t.Fatalf("sub-floor row gated: exit = %d, want 0", code)
	}
}

func TestBenchCompareStateCountDrift(t *testing.T) {
	prev := benchRecord{Explorations: []explorationBench{
		{System: "grid", FullStates: 100, FullStatesPerSec: 1000, QuotientStates: 30}}}
	cur := benchRecord{Explorations: []explorationBench{
		{System: "grid", FullStates: 101, FullStatesPerSec: 1000, QuotientStates: 30}}}
	bad, _, compared := diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if compared != 1 || len(bad) != 1 || !strings.Contains(bad[0], "determinism contract") {
		t.Fatalf("bad = %v, compared = %d", bad, compared)
	}
	// A mode disappearing (count going to zero) is a workload change, not drift.
	cur.Explorations[0].FullStates = 100
	cur.Explorations[0].QuotientStates = 0
	bad, _, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(bad) != 0 {
		t.Fatalf("removed mode flagged as drift: %v", bad)
	}
}

func TestBenchCompareCrossHardwareSkipsThroughput(t *testing.T) {
	prev := benchRecord{GOARCH: "arm64", GOMAXPROCS: 8, Explorations: []explorationBench{
		{System: "grid", FullStates: 100, FullStatesPerSec: 1000}}}
	cur := benchRecord{GOARCH: "amd64", GOMAXPROCS: 2, Explorations: []explorationBench{
		{System: "grid", FullStates: 100, FullStatesPerSec: 100}}}
	bad, _, compared := diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if compared != 1 || len(bad) != 0 {
		t.Fatalf("cross-hardware throughput gated: bad = %v, compared = %d", bad, compared)
	}
	// State counts still gate across hardware.
	cur.Explorations[0].FullStates = 99
	bad, _, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(bad) != 1 {
		t.Fatalf("cross-hardware state drift not gated: %v", bad)
	}
}

func TestBenchCompareAllocRegression(t *testing.T) {
	prev := benchRecord{Explorations: []explorationBench{
		{System: "grid", FullStates: 100, FullStatesPerSec: 1000, AllocsPerState: 2.0}}}
	cur := benchRecord{Explorations: []explorationBench{
		{System: "grid", FullStates: 100, FullStatesPerSec: 1000, AllocsPerState: 2.9}}}
	// +45%: within the 50% gate.
	bad, _, compared := diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if compared != 1 || len(bad) != 0 {
		t.Fatalf("within-gate alloc growth flagged: bad = %v, compared = %d", bad, compared)
	}
	cur.Explorations[0].AllocsPerState = 20 // 10x: the hot path started allocating
	bad, _, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/state") {
		t.Fatalf("10x alloc growth not gated: %v", bad)
	}
	// Cross-hardware does not disable the alloc gate (allocation counts are
	// machine-independent), and a pre-v4 row (zero metric) does.
	cur.GOARCH = "amd64"
	prev.GOARCH = "arm64"
	bad, _, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(bad) != 1 {
		t.Fatalf("cross-hardware alloc growth not gated: %v", bad)
	}
	prev.Explorations[0].AllocsPerState = 0
	bad, _, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(bad) != 0 {
		t.Fatalf("pre-v4 row tripped the alloc gate: %v", bad)
	}
}

func TestBenchCompareEfficiencyWarning(t *testing.T) {
	mk := func(eff float64) benchRecord {
		return benchRecord{GOMAXPROCS: 8, Explorations: []explorationBench{{
			System: "braid", FullStates: 100, FullStatesPerSec: 1000,
			Scaling: []schedPoint{
				{Sched: "steal", Workers: 8, StatesPerSec: eff * 8000, Efficiency: eff},
				{Sched: "barrier", Workers: 8, StatesPerSec: 900},
			},
		}}}
	}
	prev, cur := mk(0.80), mk(0.50) // -37%: past the 20% warn threshold
	bad, warns, _ := diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(bad) != 0 {
		t.Fatalf("efficiency drop failed the gate instead of warning: %v", bad)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "steal efficiency") {
		t.Fatalf("warns = %v, want one efficiency warning", warns)
	}
	// A drop inside the threshold is run-to-run noise.
	cur = mk(0.70)
	_, warns, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(warns) != 0 {
		t.Fatalf("within-threshold efficiency drop warned: %v", warns)
	}
	// Efficiency is not comparable across hardware fingerprints.
	cur = mk(0.50)
	cur.GOMAXPROCS = 4
	_, warns, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(warns) != 0 {
		t.Fatalf("cross-hardware efficiency warned: %v", warns)
	}
	// Pre-v5 rows (no scaling points) never warn.
	cur = mk(0.50)
	prev.Explorations[0].Scaling = nil
	_, warns, _ = diffBenchRecords(&prev, &cur, 0.30, 0.50)
	if len(warns) != 0 {
		t.Fatalf("pre-v5 row tripped the efficiency warning: %v", warns)
	}
}

func TestBenchCompareTooFewRuns(t *testing.T) {
	path := benchFixture(t, benchRecord{Explorations: []explorationBench{{System: "grid", FullStates: 1}}})
	if code := runBenchCompare([]string{"-file", path}); code != 0 {
		t.Fatalf("single run: exit = %d, want 0", code)
	}
}

func TestBenchCompareBadFile(t *testing.T) {
	path := writeTemp(t, "corrupt.json", `{"schema_version": 2, "runs": [{`)
	if code := runBenchCompare([]string{"-file", path}); code != 2 {
		t.Fatalf("corrupt history: exit = %d, want 2", code)
	}
}
