package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// runTraceDiff is the `hundred trace-diff` subcommand: it localizes the
// first structural divergence between two JSONL run traces. Both traces
// are reduced to their digest-line sequences (exactly the
// worker-count-invariant fields Digest hashes — see obs.DigestLine) and
// compared in lockstep, so two traces of the same runs at different worker
// counts, snapshot periods or schedulers compare equal, and a real
// divergence points at the first level/event where the structures part.
//
// Exit codes: 0 traces agree, 1 traces diverge, 2 usage or read error.
func runTraceDiff(args []string) int {
	fs := flag.NewFlagSet("hundred trace-diff", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hundred trace-diff TRACE_A TRACE_B")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	a, err := loadDigestLines(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	b, err := loadDigestLines(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Manifest context first: differing provenance is not a divergence by
	// itself (worker counts and schedulers are allowed to differ), but it
	// is the first thing a reader wants to know.
	if ctx := manifestDelta(a.manifest, b.manifest); len(ctx) > 0 {
		fmt.Printf("manifest differences (informational):\n")
		for _, line := range ctx {
			fmt.Printf("  %s\n", line)
		}
	}

	n := len(a.lines)
	if len(b.lines) < n {
		n = len(b.lines)
	}
	for i := 0; i < n; i++ {
		if a.lines[i].text != b.lines[i].text {
			fmt.Printf("traces diverge at deterministic event %d:\n", i+1)
			fmt.Printf("  %s:%d (seq %d): %s\n", fs.Arg(0), a.lines[i].fileLine, a.lines[i].seq, strings.TrimSuffix(a.lines[i].text, "\n"))
			fmt.Printf("  %s:%d (seq %d): %s\n", fs.Arg(1), b.lines[i].fileLine, b.lines[i].seq, strings.TrimSuffix(b.lines[i].text, "\n"))
			return 1
		}
	}
	if len(a.lines) != len(b.lines) {
		longPath, long, short := fs.Arg(0), a, b
		if len(b.lines) > len(a.lines) {
			longPath, long, short = fs.Arg(1), b, a
		}
		extra := long.lines[len(short.lines)]
		fmt.Printf("traces agree on the first %d deterministic events, then %s has %d extra (first at line %d, seq %d):\n",
			len(short.lines), longPath, len(long.lines)-len(short.lines), extra.fileLine, extra.seq)
		fmt.Printf("  %s\n", strings.TrimSuffix(extra.text, "\n"))
		return 1
	}
	fmt.Printf("traces agree: %d deterministic events, digest %s\n", len(a.lines), a.digest)
	return 0
}

// digestLine is one digest-relevant event with its provenance in the file.
type digestLine struct {
	text     string
	fileLine int
	seq      uint64
}

// digestTrace is one trace reduced to its deterministic skeleton.
type digestTrace struct {
	manifest obs.Manifest
	lines    []digestLine
	digest   string
}

// loadDigestLines reads a trace and keeps only its digest-relevant lines.
func loadDigestLines(path string) (*digestTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, evs, err := obs.ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	dt := &digestTrace{manifest: m}
	dig := obs.NewDigest()
	for i, ev := range evs {
		if line, ok := obs.DigestLine(ev); ok {
			// Line i+2: 1-based, after the manifest line.
			dt.lines = append(dt.lines, digestLine{text: line, fileLine: i + 2, seq: ev.Seq})
			dig.Publish(ev)
		}
	}
	dt.digest = dig.Sum()
	return dt, nil
}

// manifestDelta lists the informational manifest differences.
func manifestDelta(a, b obs.Manifest) []string {
	var out []string
	if a.Tool != b.Tool {
		out = append(out, fmt.Sprintf("tool: %q vs %q", a.Tool, b.Tool))
	}
	if a.SchemaVersion != b.SchemaVersion {
		out = append(out, fmt.Sprintf("schema: v%d vs v%d", a.SchemaVersion, b.SchemaVersion))
	}
	if a.Seed != b.Seed {
		out = append(out, fmt.Sprintf("seed: %d vs %d", a.Seed, b.Seed))
	}
	if a.Git != b.Git {
		out = append(out, fmt.Sprintf("git: %q vs %q", a.Git, b.Git))
	}
	seen := map[string]bool{}
	var keys []string
	for k := range a.Options {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b.Options {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a.Options[k] != b.Options[k] {
			out = append(out, fmt.Sprintf("option %s: %q vs %q", k, a.Options[k], b.Options[k]))
		}
	}
	return out
}
