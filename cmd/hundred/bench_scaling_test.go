package main

import (
	"testing"

	"repro/internal/engine"
)

// TestScalingSweep drives the v5 worker-scaling sweep over a scaled-down
// braid: every grid cell must reproduce the full-mode state count, steal
// points must carry efficiencies, and barrier baselines must not.
func TestScalingSweep(t *testing.T) {
	const lanes, depth = 4, 2_000
	w := benchWorkload{
		name: "braid-test",
		scale: func(sc string, workers int) (int, engine.Stats, error) {
			var st engine.Stats
			res, err := engine.Explore([]braidState{{lane: -1}},
				braidExpand(lanes, depth), engine.Options{
					Parallelism: workers, Stats: &st, Sched: sc,
				})
			if err != nil {
				return 0, st, err
			}
			return len(res.States), st, nil
		},
	}
	want := 1 + lanes*depth
	pts, err := runScalingSweep(w, want)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(scalingWorkers)+2 {
		t.Fatalf("got %d points, want %d steal + 2 barrier", len(pts), len(scalingWorkers))
	}
	for _, n := range scalingWorkers {
		p, ok := scalingPoint(pts, "steal", n)
		if !ok {
			t.Fatalf("no steal point at %d workers", n)
		}
		if p.Efficiency <= 0 {
			t.Fatalf("steal@%d carries no efficiency: %+v", n, p)
		}
		if p.StatesPerSec <= 0 {
			t.Fatalf("steal@%d carries no throughput: %+v", n, p)
		}
	}
	if p, ok := scalingPoint(pts, "steal", 1); !ok || p.Efficiency != 1 {
		t.Fatalf("one-worker steal efficiency = %+v, want 1.0 by definition", p)
	}
	for _, n := range []int{1, scalingWorkers[len(scalingWorkers)-1]} {
		p, ok := scalingPoint(pts, "barrier", n)
		if !ok {
			t.Fatalf("no barrier baseline at %d workers", n)
		}
		if p.Efficiency != 0 {
			t.Fatalf("barrier@%d carries a steal efficiency: %+v", n, p)
		}
	}
	// The determinism check must fire when a run's state count drifts.
	if _, err := runScalingSweep(w, want+1); err == nil {
		t.Fatal("state-count drift not caught by the sweep")
	}
}
