package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBenchFileMissing(t *testing.T) {
	bf, err := loadBenchFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing file must yield an empty history, got %v", err)
	}
	if bf.SchemaVersion != benchSchemaVersion || len(bf.Runs) != 0 {
		t.Fatalf("empty history = %+v", bf)
	}
}

func TestLoadBenchFileCurrentSchema(t *testing.T) {
	path := writeTemp(t, "bench.json",
		`{"schema_version": 2, "runs": [{"goos": "linux", "goarch": "amd64", "gomaxprocs": 4, "explorations": [], "synth": []}]}`)
	bf, err := loadBenchFile(path)
	if err != nil {
		t.Fatalf("loadBenchFile: %v", err)
	}
	if len(bf.Runs) != 1 || bf.Runs[0].GOOS != "linux" {
		t.Fatalf("history = %+v", bf)
	}
}

func TestLoadBenchFileMigratesLegacy(t *testing.T) {
	legacy := benchRecord{GOOS: "linux", GOARCH: "arm64", GOMAXPROCS: 2,
		Explorations: []explorationBench{{System: "x", FullStates: 10}}}
	data, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := loadBenchFile(writeTemp(t, "legacy.json", string(data)))
	if err != nil {
		t.Fatalf("legacy migration: %v", err)
	}
	if bf.SchemaVersion != benchSchemaVersion || len(bf.Runs) != 1 || bf.Runs[0].Explorations[0].System != "x" {
		t.Fatalf("migrated history = %+v", bf)
	}
}

// TestLoadBenchFileMalformedRefusesWithHint is the regression test for the
// history-loss bug: a corrupt BENCH_hundred.json must produce an error that
// names the file, refuses to overwrite, and tells the user how to recover —
// never an empty history that the subsequent write would clobber.
func TestLoadBenchFileMalformedRefusesWithHint(t *testing.T) {
	for name, content := range map[string]string{
		"truncated":   `{"schema_version": 2, "runs": [{"goos": "li`,
		"not-json":    "states: many\n",
		"wrong-shape": `{"foo": [1, 2, 3]}`,
	} {
		path := writeTemp(t, name+".json", content)
		_, err := loadBenchFile(path)
		if err == nil {
			t.Errorf("%s: malformed file loaded without error (history would be clobbered)", name)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, path) {
			t.Errorf("%s: error %q does not name the file", name, msg)
		}
		if !strings.Contains(msg, "refusing to overwrite") {
			t.Errorf("%s: error %q does not refuse the overwrite", name, msg)
		}
		if !strings.Contains(msg, "move/delete") {
			t.Errorf("%s: error %q carries no recovery hint", name, msg)
		}
	}
}

// TestLoadBenchFileRejectsNewerSchema pins forward compatibility: a file
// written by a newer binary must not be rewritten into this binary's layout.
func TestLoadBenchFileRejectsNewerSchema(t *testing.T) {
	path := writeTemp(t, "future.json", `{"schema_version": 99, "runs": []}`)
	_, err := loadBenchFile(path)
	if err == nil {
		t.Fatal("newer schema loaded without error")
	}
	if !strings.Contains(err.Error(), "newer than") {
		t.Fatalf("error %q does not explain the version conflict", err)
	}
}

func TestBenchHistoryCapKeepsNewest(t *testing.T) {
	bf := benchFile{SchemaVersion: benchSchemaVersion}
	for i := 0; i < benchHistoryCap+3; i++ {
		bf.Runs = append(bf.Runs, benchRecord{GOMAXPROCS: i})
	}
	// Mirror runBenchJSON's capping.
	if excess := len(bf.Runs) - benchHistoryCap; excess > 0 {
		bf.Runs = append([]benchRecord(nil), bf.Runs[excess:]...)
	}
	if len(bf.Runs) != benchHistoryCap {
		t.Fatalf("history length = %d, want %d", len(bf.Runs), benchHistoryCap)
	}
	if bf.Runs[len(bf.Runs)-1].GOMAXPROCS != benchHistoryCap+2 {
		t.Fatal("cap dropped the newest run instead of the oldest")
	}
}
