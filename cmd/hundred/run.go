package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/runtime"
	"repro/internal/sharedmem"
)

// runLive is the `hundred run` subcommand: it executes a workload as a
// real concurrent system under the seeded adversarial scheduler
// (internal/runtime) and replays each captured trace into the explored
// state space (refinement checking), printing one line per run.
//
//	hundred run -workload lcr -runs 16 -delay 3          # seeded sweep, refined
//	hundred run -workload abp -drop 0.3 -buggy           # silent-sender bug: exits 1
//	hundred run -workload lcr -procs 200 -max-events 2000000 -no-refine
//	hundred run -workload benor -crash 0.3 -restart-after 8 -trace t.jsonl
//
// Exit status: 0 when every run passed (or ran live-only), 1 when any
// refinement obligation failed, 2 on usage errors.
func runLive(args []string) int {
	fs := flag.NewFlagSet("hundred run", flag.ContinueOnError)
	workload := fs.String("workload", "lcr", "workload: lcr | abp | benor | mutex")
	buggy := fs.Bool("buggy", false, "run the deliberately broken variant (lcr: own-id forwarder; abp: no retransmission)")
	procs := fs.Int("procs", 4, "process count (lcr ring size, benor n, mutex processes; abp is fixed at 2)")
	msgs := fs.Int("msgs", 3, "abp: messages to transfer")
	phases := fs.Int("phases", 1, "benor: phase bound")
	alg := fs.String("alg", "ticket", "mutex: algorithm (ticket | tas | peterson | dijkstra)")
	seed := fs.Int64("seed", 1, "first adversary seed")
	runs := fs.Int("runs", 1, "number of seeds to sweep, starting at -seed")
	delay := fs.Int("delay", 0, "max per-action scheduling delay, in rounds")
	drop := fs.Float64("drop", 0, "per-delivery drop probability (abp only)")
	dup := fs.Float64("dup", 0, "per-delivery duplication probability")
	crash := fs.Float64("crash", 0, "per-process crash probability")
	restartAfter := fs.Int("restart-after", 0, "events after which a crashed process restarts (0 = never)")
	batch := fs.Int("batch", 0, "concurrent dispatch width (0 = default)")
	maxEvents := fs.Int("max-events", 1<<16, "scheduling budget per run")
	noRefine := fs.Bool("no-refine", false, "skip model exploration and refinement checking")
	tracePath := fs.String("trace", "", "write the rt event stream as a JSONL trace to this file (\"-\" for stdout)")
	progress := fs.Bool("progress", false, "progress lines on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	w, err := buildWorkload(*workload, *buggy, *procs, *msgs, *phases, *alg)
	if err != nil {
		fmt.Fprintln(fs.Output(), err)
		return 2
	}

	sink, obsCleanup, err := obs.SetupCLI(obs.CLIConfig{
		Tool: "hundred run", Progress: *progress, TracePath: *tracePath,
		Seed: *seed, Options: map[string]string{"workload": w.Name()},
	})
	if err != nil {
		fmt.Fprintln(fs.Output(), err)
		return 2
	}
	defer obsCleanup()

	var g *core.Graph[string]
	if !*noRefine {
		g, err = runtime.ExploreModel(w)
		switch {
		case errors.Is(err, runtime.ErrNoModel):
			fmt.Printf("workload %s has no explorable model at this scale; running live-only\n", w.Name())
			g = nil
		case err != nil:
			fmt.Fprintln(fs.Output(), err)
			return 2
		default:
			fmt.Printf("model %s: %d states, %d edges\n", w.Name(), g.Len(), g.NumEdges())
		}
	}

	failures := 0
	for r := 0; r < *runs; r++ {
		opts := runtime.Options{
			Seed: *seed + int64(r), MaxEvents: *maxEvents, Batch: *batch,
			Delay: *delay, Drop: *drop, Dup: *dup,
			Crash: *crash, RestartAfter: *restartAfter, Sink: sink,
		}
		res, err := runtime.Run(w, opts)
		if err != nil {
			fmt.Fprintln(fs.Output(), err)
			return 2
		}
		line := fmt.Sprintf("seed=%-4d events=%-8d trace=%-8d %-9s digest=%s",
			opts.Seed, res.Events, len(res.Trace), endCause(res), res.Digest)
		if g == nil {
			fmt.Printf("%s live-only\n", line)
			continue
		}
		rep, err := runtime.Refine(w, res, g)
		if err != nil {
			fmt.Printf("%s REFINE FAIL: %v\n", line, err)
			failures++
			continue
		}
		fmt.Printf("%s refined ok (ends=%d terminal=%v)\n", line, rep.Ends, rep.TerminalEnd)
	}
	if failures > 0 {
		fmt.Printf("%d of %d runs failed refinement\n", failures, *runs)
		return 1
	}
	return 0
}

// endCause names the run's end condition.
func endCause(res *runtime.Result) string {
	switch {
	case res.Stopped:
		return "stopped"
	case res.Quiesced:
		return "quiesced"
	case res.Stalled:
		return "stalled"
	case res.Budget:
		return "budget"
	default:
		return "?"
	}
}

// buildWorkload constructs the named live workload. The LCR id assignment
// is a fixed pseudo-random permutation of 0..procs-1, independent of the
// adversary seed so a sweep refines every run against one explored model.
func buildWorkload(name string, buggy bool, procs, msgs, phases int, alg string) (runtime.Workload, error) {
	switch name {
	case "lcr":
		ids := rand.New(rand.NewSource(12345)).Perm(procs)
		if buggy {
			return ring.NewBuggyLiveLCR(ids)
		}
		return ring.NewLiveLCR(ids)
	case "abp":
		if buggy {
			return datalink.NewNoRetransmitABP(msgs)
		}
		return datalink.NewLiveABP(msgs)
	case "benor":
		if buggy {
			return nil, fmt.Errorf("hundred run: no buggy variant for %q", name)
		}
		inputs := make([]int, procs)
		for i := range inputs {
			inputs[i] = i % 2
		}
		return consensus.NewLiveBenOr(procs, (procs-1)/2, phases, inputs)
	case "mutex":
		if buggy {
			return nil, fmt.Errorf("hundred run: no buggy variant for %q", name)
		}
		var a sharedmem.Algorithm
		switch alg {
		case "ticket":
			a = sharedmem.NewTicketLock(procs)
		case "tas":
			a = sharedmem.NewTASLock(procs)
		case "peterson":
			a = sharedmem.NewPeterson2()
		case "dijkstra":
			a = sharedmem.NewDijkstra(procs)
		default:
			return nil, fmt.Errorf("hundred run: unknown mutex algorithm %q (want ticket, tas, peterson, or dijkstra)", alg)
		}
		return sharedmem.NewLiveMutex(a), nil
	default:
		return nil, fmt.Errorf("hundred run: unknown workload %q (want lcr, abp, benor, or mutex)", name)
	}
}
