package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// runTraceLint is the `hundred trace-lint` subcommand: it validates JSONL
// run traces written by -trace against the schema (manifest first, known
// event kinds, strictly increasing sequence numbers, correctly nested runs
// with internally consistent snapshots) and reports each file's summary
// and recomputed deterministic-event digest. Any invalid file fails the
// command, which is how CI keeps the trace schema honest.
//
// Exit codes: 0 every file valid, 1 at least one invalid file, 2 usage
// error. -q suppresses the per-file ok lines (invalid files still print,
// on stderr), so scripts can lint by exit code alone.
func runTraceLint(args []string) int {
	fs := flag.NewFlagSet("hundred trace-lint", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "quiet: no per-file summary lines, report only invalid files on stderr")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hundred trace-lint [-q] FILE...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	bad := 0
	for _, path := range fs.Args() {
		sum, err := lintOne(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: INVALID: %v\n", path, err)
			bad++
			continue
		}
		if *quiet {
			continue
		}
		fmt.Printf("%s: ok schema=%d tool=%s runs=%d rt_runs=%d events=%d rt_events=%d levels=%d snapshots=%d digest=%s\n",
			path, sum.SchemaVersion, sum.Tool, sum.Runs, sum.RTRuns, sum.Events, sum.RTEvents, sum.Levels, sum.Snapshots, sum.Digest)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func lintOne(path string) (*obs.TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ValidateTrace(f)
}
