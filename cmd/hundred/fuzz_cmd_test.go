package main

import "testing"

// TestRunFuzzReplay drives the replay mode end to end: the shrunk
// poisoned-canon configuration from the spacegen shrinker tests must be
// caught (exit 0), and the same space run without poison must pass the
// oracle.
func TestRunFuzzReplay(t *testing.T) {
	args := []string{"-seed", "3", "-families", "1", "-states", "2", "-mult", "2", "-extra", "0", "-sinks", "0"}
	if code := runFuzz(append(args, "-poison", "canon")); code != 0 {
		t.Fatalf("poisoned-canon replay exited %d, want 0 (falsifier catch)", code)
	}
	if code := runFuzz(args); code != 0 {
		t.Fatalf("clean replay exited %d, want 0", code)
	}
}

func TestRunFuzzRejectsUnknownPoison(t *testing.T) {
	if code := runFuzz([]string{"-seed", "1", "-poison", "bogus"}); code != 2 {
		t.Fatalf("unknown poison exited %d, want 2", code)
	}
}
