package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunLiveRefinedSweep drives `hundred run` end to end: a clean LCR
// sweep must refine on every seed (exit 0) and write a trace that
// trace-lint accepts.
func TestRunLiveRefinedSweep(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "rt.jsonl")
	code := runLive([]string{"-workload", "lcr", "-runs", "4", "-delay", "2", "-trace", trace})
	if code != 0 {
		t.Fatalf("clean lcr sweep exited %d, want 0", code)
	}
	if code := runTraceLint([]string{trace}); code != 0 {
		t.Fatalf("trace-lint rejected the run trace (exit %d)", code)
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
}

// TestRunLiveBuggyFails: the deliberately broken variants must make the
// subcommand exit 1 — this is the CI contract for the oracle.
func TestRunLiveBuggyFails(t *testing.T) {
	if code := runLive([]string{"-workload", "lcr", "-buggy", "-runs", "2", "-delay", "2"}); code != 1 {
		t.Fatalf("buggy lcr exited %d, want 1", code)
	}
	if code := runLive([]string{"-workload", "abp", "-buggy", "-drop", "0.4", "-delay", "2", "-runs", "8"}); code != 1 {
		t.Fatalf("no-retransmit abp exited %d, want 1", code)
	}
}

func TestRunLiveUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "bogus"},
		{"-workload", "benor", "-buggy"},
		{"-workload", "mutex", "-buggy"},
		{"-workload", "mutex", "-alg", "bogus"},
		{"-workload", "lcr", "-drop", "0.5"}, // lcr does not support drop
	} {
		if code := runLive(args); code != 2 {
			t.Errorf("runLive(%v) exited %d, want 2", args, code)
		}
	}
}

// TestRunLiveNoModelScale: big configurations run live-only and succeed.
func TestRunLiveNoModelScale(t *testing.T) {
	if code := runLive([]string{"-workload", "lcr", "-procs", "64", "-max-events", "65536"}); code != 0 {
		t.Fatalf("live-only lcr at n=64 exited %d, want 0", code)
	}
}
