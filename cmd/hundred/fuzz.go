package main

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/spacegen"
	"repro/internal/store"
)

// runFuzz is the `hundred fuzz` subcommand: it drives the generative
// differential oracle (internal/spacegen + engine.Differential) outside `go
// test`, for budgeted smoke runs in CI and for replaying shrunk failures.
//
// Two modes:
//
//	hundred fuzz -budget 30s                 # sweep seeds 0,1,2,... for the budget
//	hundred fuzz -seed 3 -families 1 ...     # replay exactly one configuration
//
// A sweep stops at the first divergence, shrinks it to a minimal
// configuration, prints the replay line, and exits 1. With -poison the
// sweep instead plants the named defect (canon | indep) in every space
// where it is observable and fails if the engine's falsifier misses it.
func runFuzz(args []string) int {
	fs := flag.NewFlagSet("hundred fuzz", flag.ContinueOnError)
	budget := fs.Duration("budget", 30*time.Second, "wall-clock budget for the seed sweep")
	seed := fs.Int64("seed", -1, "replay exactly this generator seed and exit (disables the sweep)")
	families := fs.Int("families", 2, "max component families per space")
	states := fs.Int("states", 5, "max states per family")
	mult := fs.Int("mult", 2, "max replicas per family")
	extra := fs.Int("extra", 3, "max extra (non-tree) edges per family")
	sinks := fs.Int("sinks", 2, "max planted sinks per family")
	chain := fs.Int("chain", 0,
		"generate deep-narrow braid spaces instead of product spaces: max chain depth (0 = off); lanes are drawn up to -mult")
	poison := fs.String("poison", "", "plant a known-unsound hook and require the falsifier to catch it: canon | indep")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *poison != "" && *poison != "canon" && *poison != "indep" {
		fmt.Fprintf(fs.Output(), "unknown -poison %q (want canon or indep)\n", *poison)
		return 2
	}
	base := spacegen.Config{
		Families: *families, MaxStates: *states, MaxMult: *mult,
		MaxExtra: *extra, MaxSinks: *sinks, Chain: *chain,
	}

	if *seed >= 0 {
		cfg := base
		cfg.Seed = uint64(*seed)
		t0 := time.Now()
		ok, msg, rep := fuzzOne(cfg, *poison)
		fmt.Printf("%s%s\n", msg, fuzzSummary(rep, time.Since(t0)))
		if !ok {
			return 1
		}
		return 0
	}

	deadline := time.Now().Add(*budget)
	ran, skipped := 0, 0
	for s := uint64(0); time.Now().Before(deadline); s++ {
		cfg := base
		cfg.Seed = s
		t0 := time.Now()
		ok, msg, rep := fuzzOne(cfg, *poison)
		if msg == "" {
			skipped++
			continue
		}
		if !ok {
			shrunk := spacegen.Shrink(cfg, func(c spacegen.Config) bool {
				bad, _, _ := fuzzOne(c, *poison)
				return !bad
			})
			fmt.Println(msg)
			fmt.Printf("shrunk: %s\n", spacegen.Generate(shrunk).Describe())
			fmt.Printf("replay: %s\n", spacegen.ReplayLine(shrunk, *poison))
			return 1
		}
		fmt.Printf("%s%s\n", msg, fuzzSummary(rep, time.Since(t0)))
		ran++
	}
	what := "differential oracle"
	if *poison != "" {
		what = "poisoned-" + *poison + " falsifier"
	}
	fmt.Printf("%s passed on %d generated spaces (%d skipped) in %s\n", what, ran, skipped, *budget)
	return 0
}

// fuzzStateCap bounds one iteration's exploration (each space is explored
// ~12 times across the mode/worker grid).
const fuzzStateCap = 4_000

// fuzzSummary renders the per-seed one-line telemetry suffix from a
// passing oracle report: the reference run's final snapshot totals, the
// modes exercised, and the iteration's wall time. Empty when the oracle
// failed before producing a report (divergence, or a caught poison).
func fuzzSummary(rep *engine.DiffReport, elapsed time.Duration) string {
	if rep == nil || len(rep.Modes) == 0 {
		return fmt.Sprintf(" [%s]", elapsed.Round(time.Millisecond))
	}
	snap := rep.Modes[0].Stats.Snapshot()
	modes := make([]string, len(rep.Modes))
	for i, m := range rep.Modes {
		modes[i] = m.Mode
	}
	return fmt.Sprintf(" [states=%d edges=%d depth=%d modes=%s %s]",
		snap.States, snap.Edges, snap.Depth, strings.Join(modes, ","), elapsed.Round(time.Millisecond))
}

// fuzzOne runs one configuration through the oracle (or its poisoned
// variant). It returns ok, a human-readable outcome, and the oracle report
// when one was produced; an empty message means the iteration was skipped
// (space too large, or poison unobservable).
func fuzzOne(cfg spacegen.Config, poison string) (bool, string, *engine.DiffReport) {
	sp := spacegen.Generate(cfg)
	cap := fuzzStateCap
	if cfg.Chain > 0 {
		// Braids are cheap per state (frontier ~= lanes), so the cap is
		// looser than the product topology's.
		cap *= 3
	}
	if sp.Truth.States > cap {
		return true, "", nil
	}
	spec := sp.Spec()
	if poison == "" {
		// Sound-path sweeps also cross-check the spill store against mem at
		// a deliberately tiny budget (small pages so even these spaces cross
		// the spill threshold); poisoned sweeps skip it — the falsifier under
		// test fires before the store arm runs.
		spec.Stores = []store.Config{{Kind: store.Spill, MaxBytes: 1 << 9, PageBits: 4}}
	}
	switch poison {
	case "canon":
		broken, ok := sp.PoisonedCanon()
		if !ok {
			return true, "", nil
		}
		spec.Canon = broken
		spec.Truth = nil
	case "indep":
		broken, ok := sp.PoisonedIndependence()
		if !ok {
			return true, "", nil
		}
		spec.Independent = spacegen.AdaptIndependence(broken)
		spec.Truth = nil
	}
	rep, err := engine.Differential(spec)
	switch poison {
	case "canon":
		if errors.Is(err, engine.ErrCanonUnsound) {
			return true, fmt.Sprintf("caught poisoned canon on %s", sp.Describe()), rep
		}
		return false, fmt.Sprintf("poisoned canon ESCAPED the falsifier on %s (err: %v)", sp.Describe(), err), rep
	case "indep":
		if errors.Is(err, engine.ErrPORUnsound) {
			return true, fmt.Sprintf("caught poisoned independence on %s", sp.Describe()), rep
		}
		return false, fmt.Sprintf("poisoned independence ESCAPED the falsifier on %s (err: %v)", sp.Describe(), err), rep
	}
	if err != nil {
		return false, fmt.Sprintf("DIVERGENCE on %s:\n  %v", sp.Describe(), err), rep
	}
	return true, fmt.Sprintf("ok %s", sp.Describe()), rep
}
