package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/spacegen"
)

// runFuzz is the `hundred fuzz` subcommand: it drives the generative
// differential oracle (internal/spacegen + engine.Differential) outside `go
// test`, for budgeted smoke runs in CI and for replaying shrunk failures.
//
// Two modes:
//
//	hundred fuzz -budget 30s                 # sweep seeds 0,1,2,... for the budget
//	hundred fuzz -seed 3 -families 1 ...     # replay exactly one configuration
//
// A sweep stops at the first divergence, shrinks it to a minimal
// configuration, prints the replay line, and exits 1. With -poison the
// sweep instead plants the named defect (canon | indep) in every space
// where it is observable and fails if the engine's falsifier misses it.
func runFuzz(args []string) int {
	fs := flag.NewFlagSet("hundred fuzz", flag.ContinueOnError)
	budget := fs.Duration("budget", 30*time.Second, "wall-clock budget for the seed sweep")
	seed := fs.Int64("seed", -1, "replay exactly this generator seed and exit (disables the sweep)")
	families := fs.Int("families", 2, "max component families per space")
	states := fs.Int("states", 5, "max states per family")
	mult := fs.Int("mult", 2, "max replicas per family")
	extra := fs.Int("extra", 3, "max extra (non-tree) edges per family")
	sinks := fs.Int("sinks", 2, "max planted sinks per family")
	poison := fs.String("poison", "", "plant a known-unsound hook and require the falsifier to catch it: canon | indep")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *poison != "" && *poison != "canon" && *poison != "indep" {
		fmt.Fprintf(fs.Output(), "unknown -poison %q (want canon or indep)\n", *poison)
		return 2
	}
	base := spacegen.Config{
		Families: *families, MaxStates: *states, MaxMult: *mult,
		MaxExtra: *extra, MaxSinks: *sinks,
	}

	if *seed >= 0 {
		cfg := base
		cfg.Seed = uint64(*seed)
		ok, msg := fuzzOne(cfg, *poison)
		fmt.Println(msg)
		if !ok {
			return 1
		}
		return 0
	}

	deadline := time.Now().Add(*budget)
	ran, skipped := 0, 0
	for s := uint64(0); time.Now().Before(deadline); s++ {
		cfg := base
		cfg.Seed = s
		ok, msg := fuzzOne(cfg, *poison)
		if msg == "" {
			skipped++
			continue
		}
		if !ok {
			shrunk := spacegen.Shrink(cfg, func(c spacegen.Config) bool {
				bad, _ := fuzzOne(c, *poison)
				return !bad
			})
			fmt.Println(msg)
			fmt.Printf("shrunk: %s\n", spacegen.Generate(shrunk).Describe())
			fmt.Printf("replay: %s\n", spacegen.ReplayLine(shrunk, *poison))
			return 1
		}
		ran++
	}
	what := "differential oracle"
	if *poison != "" {
		what = "poisoned-" + *poison + " falsifier"
	}
	fmt.Printf("%s passed on %d generated spaces (%d skipped) in %s\n", what, ran, skipped, *budget)
	return 0
}

// fuzzStateCap bounds one iteration's exploration (each space is explored
// ~12 times across the mode/worker grid).
const fuzzStateCap = 4_000

// fuzzOne runs one configuration through the oracle (or its poisoned
// variant). It returns ok plus a human-readable outcome; an empty message
// means the iteration was skipped (space too large, or poison unobservable).
func fuzzOne(cfg spacegen.Config, poison string) (bool, string) {
	sp := spacegen.Generate(cfg)
	if sp.Truth.States > fuzzStateCap {
		return true, ""
	}
	spec := sp.Spec()
	switch poison {
	case "canon":
		broken, ok := sp.PoisonedCanon()
		if !ok {
			return true, ""
		}
		spec.Canon = broken
		spec.Truth = nil
	case "indep":
		broken, ok := sp.PoisonedIndependence()
		if !ok {
			return true, ""
		}
		spec.Independent = spacegen.AdaptIndependence(broken)
		spec.Truth = nil
	}
	_, err := engine.Differential(spec)
	switch poison {
	case "canon":
		if errors.Is(err, engine.ErrCanonUnsound) {
			return true, fmt.Sprintf("caught poisoned canon on %s", sp.Describe())
		}
		return false, fmt.Sprintf("poisoned canon ESCAPED the falsifier on %s (err: %v)", sp.Describe(), err)
	case "indep":
		if errors.Is(err, engine.ErrPORUnsound) {
			return true, fmt.Sprintf("caught poisoned independence on %s", sp.Describe())
		}
		return false, fmt.Sprintf("poisoned independence ESCAPED the falsifier on %s (err: %v)", sp.Describe(), err)
	}
	if err != nil {
		return false, fmt.Sprintf("DIVERGENCE on %s:\n  %v", sp.Describe(), err)
	}
	return true, fmt.Sprintf("ok %s", sp.Describe())
}
