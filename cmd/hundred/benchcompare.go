package main

import (
	"flag"
	"fmt"
)

// benchCompareThreshold is the full-mode states/sec regression (fractional)
// past which bench-compare fails. 30% is far above same-machine run-to-run
// noise for these workloads but well below a real algorithmic regression.
const benchCompareThreshold = 0.30

// benchAllocThreshold is the allocs-per-state growth (fractional) past
// which bench-compare fails. Allocation counts are near-deterministic —
// the slack only absorbs GC bookkeeping and map-growth timing — so the
// gate is tighter than the throughput one: a hot path that regresses to
// one allocation per successor moves this metric by orders of magnitude.
const benchAllocThreshold = 0.50

// benchEffThreshold is the relative drop in top-worker steal-scheduler
// parallel efficiency past which bench-compare warns (schema v5 scaling
// sweep). Efficiency moves with co-tenancy on shared runners, so the
// scheduler axis warns instead of failing, and only when the two runs
// carry the same hardware fingerprint.
const benchEffThreshold = 0.20

// benchMinGateSeconds is the shortest full-mode run the throughput gate
// considers measurable. The suite's smallest workloads finish in a
// couple of milliseconds, where scheduler jitter alone moves states/sec
// by 2x run to run; gating on those rows makes the gate flap without
// catching anything the bigger rows would miss. State-count and alloc
// gates ignore this floor — they are noise-free at any duration.
const benchMinGateSeconds = 0.05

// runBenchCompare is the `hundred bench-compare` subcommand: it diffs the
// last two runs recorded in a BENCH_hundred.json history and exits nonzero
// when any system present in both runs regressed its full-mode throughput
// by more than the threshold, or moved a deterministic state count. This is
// the hard CI gate the warn-only comparison inside -bench-json cannot be
// (that one runs before the new record is committed; this one compares two
// committed records on the same hardware).
func runBenchCompare(args []string) int {
	fs := flag.NewFlagSet("hundred bench-compare", flag.ContinueOnError)
	file := fs.String("file", "BENCH_hundred.json", "bench history file to compare")
	threshold := fs.Float64("threshold", benchCompareThreshold,
		"fractional full-mode states/sec regression that fails the gate")
	allocThreshold := fs.Float64("alloc-threshold", benchAllocThreshold,
		"fractional full-mode allocs-per-state growth that fails the gate")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hundred bench-compare [-file BENCH_hundred.json] [-threshold 0.30] [-alloc-threshold 0.50]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	bf, err := loadBenchFile(*file)
	if err != nil {
		fmt.Println(err)
		return 2
	}
	if len(bf.Runs) < 2 {
		fmt.Printf("%s: %d run(s) in history; nothing to compare\n", *file, len(bf.Runs))
		return 0
	}
	prev, cur := &bf.Runs[len(bf.Runs)-2], &bf.Runs[len(bf.Runs)-1]
	bad, warns, compared := diffBenchRecords(prev, cur, *threshold, *allocThreshold)
	if compared == 0 {
		fmt.Println("no system appears in both runs; nothing to compare")
		return 0
	}
	for _, msg := range warns {
		fmt.Printf("WARN %s\n", msg)
	}
	if len(bad) > 0 {
		for _, msg := range bad {
			fmt.Printf("FAIL %s\n", msg)
		}
		return 1
	}
	fmt.Printf("ok: %d systems within %.0f%% of the previous run (%s vs %s)\n",
		compared, *threshold*100, prev.Timestamp, cur.Timestamp)
	return 0
}

// diffBenchRecords compares the systems present in both runs and returns
// one message per gate violation: a full-mode throughput regression past
// threshold, an allocs-per-state growth past allocThreshold, or any moved
// deterministic state count. Systems present in only one run (added or
// retired workloads) are skipped — the gate must not force every workload
// change to rewrite history. Throughput is only gated when both runs carry
// the same goos/goarch/gomaxprocs fingerprint: a CI runner comparing
// against a record committed from different hardware can legitimately be
// 30% slower, but it can never legitimately count a different number of
// states. The alloc gate also needs both runs to carry the v4 metric
// (pre-v4 rows leave it zero) but ignores the hardware fingerprint:
// allocation counts do not depend on machine speed. Scaling-sweep
// efficiency drops (v5) come back as warnings, not failures.
func diffBenchRecords(prev, cur *benchRecord, threshold, allocThreshold float64) (bad, warns []string, compared int) {
	sameHW := prev.GOOS == cur.GOOS && prev.GOARCH == cur.GOARCH && prev.GOMAXPROCS == cur.GOMAXPROCS
	prevRows := make(map[string]explorationBench, len(prev.Explorations))
	for _, r := range prev.Explorations {
		prevRows[r.System] = r
	}
	for _, r := range cur.Explorations {
		p, ok := prevRows[r.System]
		if !ok {
			continue
		}
		compared++
		if sameHW && p.FullStatesPerSec > 0 && r.FullStatesPerSec < p.FullStatesPerSec*(1-threshold) &&
			p.FullSeconds >= benchMinGateSeconds && r.FullSeconds >= benchMinGateSeconds {
			bad = append(bad, fmt.Sprintf("%s: full-mode throughput regressed %.1f%% (%.0f -> %.0f states/sec)",
				r.System, (1-r.FullStatesPerSec/p.FullStatesPerSec)*100, p.FullStatesPerSec, r.FullStatesPerSec))
		}
		if p.AllocsPerState > 0 && r.AllocsPerState > p.AllocsPerState*(1+allocThreshold) {
			bad = append(bad, fmt.Sprintf("%s: full-mode allocations grew %.1f%% (%.2f -> %.2f allocs/state; zero-alloc hot-path contract)",
				r.System, (r.AllocsPerState/p.AllocsPerState-1)*100, p.AllocsPerState, r.AllocsPerState))
		}
		for _, c := range []struct {
			what      string
			prev, cur int
		}{
			{"full", p.FullStates, r.FullStates},
			{"quotient", p.QuotientStates, r.QuotientStates},
			{"por", p.PORStates, r.PORStates},
			{"por+quotient", p.PORQuotientStates, r.PORQuotientStates},
		} {
			// A zero on either side means the mode (or instance) was added or
			// removed, not that a deterministic count moved.
			if c.prev != c.cur && c.prev > 0 && c.cur > 0 {
				bad = append(bad, fmt.Sprintf("%s: %s state count moved %d -> %d (determinism contract)",
					r.System, c.what, c.prev, c.cur))
			}
		}
		topW := scalingWorkers[len(scalingWorkers)-1]
		ps, pok := scalingPoint(p.Scaling, "steal", topW)
		cs, cok := scalingPoint(r.Scaling, "steal", topW)
		if sameHW && pok && cok && ps.Efficiency > 0 &&
			cs.Efficiency < ps.Efficiency*(1-benchEffThreshold) {
			warns = append(warns, fmt.Sprintf("%s: %d-worker steal efficiency dropped %.0f%% (%.2f -> %.2f)",
				r.System, topW, (1-cs.Efficiency/ps.Efficiency)*100, ps.Efficiency, cs.Efficiency))
		}
	}
	return bad, warns, compared
}
