package impossible

import (
	"math/rand"
	"testing"

	"repro/internal/flp"
)

// The facade tests exercise the public API end to end, one call per proof
// technique, so that the README examples stay honest.

func TestFacadeMutexAndSearch(t *testing.T) {
	rep, err := CheckMutex(NewPeterson2(), MutexOptions{})
	if err != nil || !rep.LockoutFree {
		t.Fatalf("Peterson via facade: %+v, %v", rep, err)
	}
	ok, err := CheckBoundedBypass(NewPeterson2(), 1, 0)
	if err != nil || !ok {
		t.Fatalf("bypass via facade: %v %v", ok, err)
	}
	rep, err = CheckMutex(NewTournament4(), MutexOptions{})
	if err != nil || !rep.MutualExclusion {
		t.Fatalf("tournament via facade: %+v, %v", rep, err)
	}
}

func TestFacadeChainAndSplice(t *testing.T) {
	chain, err := ChainLowerBound(3, 1, 1)
	if err != nil || !chain.ChainFound {
		t.Fatalf("chain via facade: %+v, %v", chain, err)
	}
	eig := NewEIG(3, 1)
	v, err := SpliceCheck(eig, 1, eig.Rounds())
	if err != nil || len(v.Violations) == 0 {
		t.Fatalf("splice via facade: %+v, %v", v, err)
	}
	count, err := VerifyFloodSet(3, 1)
	if err != nil || count == 0 {
		t.Fatalf("floodset via facade: %d, %v", count, err)
	}
}

func TestFacadeFLPAndBenOr(t *testing.T) {
	rep, err := AnalyzeFLP(NewWaitQuorum(3), flp.AnalyzeOptions{})
	if err != nil || !rep.AgreementViolated {
		t.Fatalf("flp via facade: %+v, %v", rep, err)
	}
	bo, err := MeasureBenOr(5, 2, 5, []int{0, 1, 0, 1, 1}, nil, 1)
	if err != nil || bo.Terminated != 5 {
		t.Fatalf("ben-or via facade: %+v, %v", bo, err)
	}
}

func TestFacadeRings(t *testing.T) {
	a, err := RunLCR(DescendingIDs(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHS(DescendingIDs(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.LeaderID != b.LeaderID {
		t.Fatalf("LCR/HS disagree: %d vs %d", a.LeaderID, b.LeaderID)
	}
	p, err := RunPetersonRing(DescendingIDs(8))
	if err != nil || p.Leader < 0 {
		t.Fatalf("peterson ring via facade: %+v, %v", p, err)
	}
	ir, err := RunItaiRodeh(6, 6, rand.New(rand.NewSource(2)), 100)
	if err != nil || ir.Leader < 0 {
		t.Fatalf("itai-rodeh via facade: %+v, %v", ir, err)
	}
}

func TestFacadeClocksAndSessions(t *testing.T) {
	net := ClockNetwork{Base: 1, Epsilon: 0.5}
	adj, err := ClockAdjusted(LundeliusLynchAlgo{}, ClockWorstCase(4, net), net)
	if err != nil {
		t.Fatal(err)
	}
	if ClockMaxSkew(adj) > ClockBound(4, net)+1e-9 {
		t.Fatal("clock skew exceeds bound via facade")
	}
	res, err := RunSessionsToken(4, 2)
	if err != nil || res.Sessions != 2 {
		t.Fatalf("sessions via facade: %+v, %v", res, err)
	}
	if CountSessions(RunSessionsSynchronous(3, 2).Flashes, 3) != 2 {
		t.Fatal("sync sessions via facade")
	}
}

func TestFacadeDataLinkAndRegisters(t *testing.T) {
	rep, err := TwoGeneralsChainCheck(NewTwoGeneralsHandshake(2), 1, 1)
	if err != nil || rep.Horn == "" {
		t.Fatalf("two generals via facade: %+v, %v", rep, err)
	}
	ok, err := IsAtomicHistory(nil, 0)
	if err != nil || !ok {
		t.Fatalf("empty history should be atomic: %v %v", ok, err)
	}
	task := BinaryConsensusTask(3)
	if imp, _ := task.MoranWolfstahlImpossible(); !imp {
		t.Fatal("consensus task should be flagged by Moran–Wolfstahl")
	}
}
