// Byzantine agreement end to end (§2.2.1): run exponential information
// gathering at n=4, t=1 and watch it survive a two-faced traitor; then let
// the scenario engine splice two copies of the n=3 system into a ring and
// derive the concrete Byzantine execution that defeats it — the
// Fischer–Lynch–Merritt "easy impossibility proof", executed.
package main

import (
	"fmt"
	"log"

	impossible "repro"
	"repro/internal/rounds"
)

func main() {
	// The possibility side: n = 4 > 3t.
	eig := impossible.NewEIG(4, 1)
	traitor := &rounds.ByzantineStrategy{
		Corrupt: map[int]bool{3: true},
		Forge: func(r, _, to int, honest rounds.Message) rounds.Message {
			if r == 1 { // report 0 to half the peers, 1 to the rest
				if to%2 == 0 {
					return "=0"
				}
				return "=1"
			}
			return honest
		},
	}
	res, err := rounds.Run(eig, []int{0, 1, 1, 0}, traitor, rounds.RunOptions{Rounds: eig.Rounds()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=4, t=1 with a two-faced traitor: decisions %v (p3 faulty) — agreement holds\n", res.Decisions)

	// The impossibility side: n = 3t.
	small := impossible.NewEIG(3, 1)
	verdict, err := impossible.SpliceCheck(small, 1, small.Rounds())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nn=3, t=1 spliced ring decisions: %v\n", verdict.RingDecisions)
	for _, v := range verdict.Violations {
		fmt.Printf("  scenario violation: %s (%s)\n", v.Requirement, v.Detail)
	}
	fmt.Printf("  concrete 1-fault counterexample reproduced against the real system: %v\n",
		verdict.CounterexampleChecked)
}
