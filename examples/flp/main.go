// FLP in action (§2.2.4): run the bivalence analyzer against three
// asynchronous consensus attempts and watch each fall on a horn of the
// theorem — then see Ben-Or's randomized algorithm thread the needle with
// probability-1 termination.
package main

import (
	"fmt"
	"log"

	impossible "repro"
	"repro/internal/flp"
)

func main() {
	zero := 0
	protos := []struct {
		p          impossible.FLPProtocol
		resilience *int
	}{
		{impossible.NewWaitAll(3), nil},     // safe, dies on a crash
		{impossible.NewWaitQuorum(3), nil},  // crash-tolerant, disagrees
		{impossible.NewAdoptSwap(2), &zero}, // safe, loops forever without any crash
	}
	for _, c := range protos {
		rep, err := impossible.AnalyzeFLP(c.p, flp.AnalyzeOptions{Resilience: c.resilience})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", flp.DescribeHorn(rep))
		fmt.Printf("  %d configurations, %d bivalent, bivalent initial: %v\n",
			rep.States, rep.BivalentConfigs, rep.HasBivalentInitial)
		if rep.NondecidingLasso != nil {
			fmt.Printf("  forever-undecided cycle (%d events) exists despite weak fairness\n",
				len(rep.NondecidingLasso.Cycle))
		}
		fmt.Println()
	}

	// The randomized escape: Ben-Or decides with probability 1.
	rep, err := impossible.MeasureBenOr(5, 2, 40, []int{0, 1, 0, 1, 1}, nil, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ben-Or (n=5, t=2), %d seeded runs: %d terminated, %d agreed, %.1f deliveries on average\n",
		rep.Runs, rep.Terminated, rep.Agreed, float64(rep.TotalDeliveries)/float64(rep.Runs))
}
