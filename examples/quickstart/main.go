// Quickstart: model-check a classic mutual exclusion algorithm in a few
// lines of the public API — verify Peterson's lock satisfies mutual
// exclusion, progress and lockout-freedom, then watch the checker catch
// the 2-valued semaphore starving a process (§2.1 of the paper).
package main

import (
	"fmt"
	"log"

	impossible "repro"
)

func main() {
	// A correct algorithm: Peterson's two-process lock.
	rep, err := impossible.CheckMutex(impossible.NewPeterson2(), impossible.MutexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: exclusion=%v progress=%v lockout-free=%v (%d states explored)\n",
		rep.Algorithm, rep.MutualExclusion, rep.Progress, rep.LockoutFree, rep.States)

	// An unfair one: the test-and-set semaphore. The checker produces the
	// starvation cycle as a concrete witness execution.
	rep, err = impossible.CheckMutex(impossible.NewTASLock(2), impossible.MutexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: lockout-free=%v, victim p%d; the weakly fair starvation cycle:\n%s\n",
		rep.Algorithm, rep.LockoutFree, rep.LockoutVictim, rep.LockoutCycle)

	// And the library's own counterexample algorithm: a fair lock through
	// a single 4-valued test-and-set variable.
	rep, err = impossible.CheckMutex(impossible.NewHandoffLock(), impossible.MutexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: exclusion=%v progress=%v lockout-free=%v with %d values in one variable\n",
		rep.Algorithm, rep.MutualExclusion, rep.Progress, rep.LockoutFree, rep.ValuesUsed[0])
}
