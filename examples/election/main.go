// Ring elections (§2.4): the message-complexity landscape around the
// Ω(n log n) lower bound — LCR's quadratic worst case, Hirschberg–
// Sinclair's n log n, the variable-speeds counterexample trading time for
// messages, Angluin's anonymous-ring impossibility, and the Itai–Rodeh
// randomized escape.
package main

import (
	"fmt"
	"log"
	"math/rand"

	impossible "repro"
	"repro/internal/ring"
)

func main() {
	n := 32
	worst, err := impossible.RunLCR(impossible.DescendingIDs(n))
	check(err)
	hs, err := impossible.RunHS(impossible.DescendingIDs(n))
	check(err)
	fmt.Printf("n=%d descending ids: LCR %d messages (Θ(n²)), HS %d messages (O(n log n))\n",
		n, worst.Messages, hs.Messages)

	// The counterexample algorithm: O(n) messages bought with time
	// exponential in the identifier magnitudes.
	ids := make([]int, 8)
	for i := range ids {
		ids[i] = i + 4 // larger ids => slower tokens
	}
	vs, err := impossible.RunVariableSpeeds(ids)
	check(err)
	fmt.Printf("variable speeds on 8 nodes: %d messages but %d rounds — why the lower bound needs its assumptions\n",
		vs.Messages, vs.Rounds)

	// Anonymous rings: determinism cannot elect.
	rep, err := impossible.CheckAnonymousSymmetry(anonymousNaive{}, 6, 0, 20)
	check(err)
	fmt.Printf("\nanonymous deterministic protocol: all 6 processes declared leader together in round %d\n",
		rep.RoundOfViolation)

	// Randomization breaks the symmetry.
	ir, err := impossible.RunItaiRodeh(6, 6, rand.New(rand.NewSource(1)), 100)
	check(err)
	fmt.Printf("Itai–Rodeh randomized election: unique leader at position %d after %d phases, %d messages\n",
		ir.Leader, ir.Phases, ir.Messages)
}

// anonymousNaive declares leadership after two rounds — for everyone.
type anonymousNaive struct{}

func (anonymousNaive) Name() string                  { return "naive" }
func (anonymousNaive) Init(int) string               { return "" }
func (anonymousNaive) Round(string) (string, string) { return "x", "x" }
func (anonymousNaive) Receive(s, _, _ string) string { return s + "." }

func (anonymousNaive) Status(s string) ring.Status {
	if len(s) >= 2 {
		return ring.Leader
	}
	return ring.Unknown
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
