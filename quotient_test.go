package impossible

// Cross-cutting properties of quotient-graph exploration (ExploreOptions.
// Canon): the quotient must be deterministic at any worker count exactly
// like the full graph, and every symmetric verdict — invariants, valence,
// fair-cycle existence — must agree between the full graph and its orbit
// quotient for the seed systems that carry canonicalizers.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/flp"
	"repro/internal/ring"
	"repro/internal/rounds"
	"repro/internal/sharedmem"
	"repro/internal/spec"
)

// quotientWorkload pairs a system with its symmetry canonicalizer.
type quotientWorkload struct {
	name  string
	sys   core.System[string]
	canon func(string) string
}

func quotientWorkloads(t *testing.T) []quotientWorkload {
	t.Helper()
	wq := flp.NewWaitQuorum(3)
	wqCanon, err := flp.PermutationCanon(wq)
	if err != nil {
		t.Fatalf("PermutationCanon: %v", err)
	}
	crash := rounds.CrashSpace{Procs: 6, MaxFaults: 3, Rounds: 6}
	crashSys, err := crash.System()
	if err != nil {
		t.Fatalf("CrashSpace.System: %v", err)
	}
	return []quotientWorkload{
		{"peterson2", sharedmem.NewSystem(sharedmem.NewPeterson2()), sharedmem.CanonFor(sharedmem.NewPeterson2())},
		{"ticket-lock", sharedmem.NewSystem(sharedmem.NewTicketLock(3)), sharedmem.CanonFor(sharedmem.NewTicketLock(3))},
		{"flp-wait-quorum", flp.NewSystem(wq, nil, 1), wqCanon},
		{"crash-space", crashSys, crash.Canon()},
	}
}

// TestQuotientExplorationIsDeterministic extends the engine's determinism
// contract to quotient runs: at 1, 2, and 8 workers the quotient graph must
// be byte-identical — state numbering, parent tree, edge lists.
func TestQuotientExplorationIsDeterministic(t *testing.T) {
	for _, w := range quotientWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			ref, err := core.Explore[string](w.sys, core.ExploreOptions{Parallelism: 1, Canon: w.canon})
			if err != nil {
				t.Fatalf("sequential quotient exploration: %v", err)
			}
			for _, par := range []int{1, 2, 8} {
				g, err := core.Explore[string](w.sys, core.ExploreOptions{Parallelism: par, Canon: w.canon, VerifyCanon: 4})
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				requireIdenticalGraphs(t, fmt.Sprintf("%s quotient par=%d", w.name, par), ref, g)
			}
		})
	}
}

// TestQuotientTruncationIsDeterministic pins the truncation contract for
// quotient runs: hitting MaxStates mid-quotient returns the canonical
// partial graph and the shared ErrStateLimit, byte-identically at every
// worker count — exactly the full-graph guarantee of
// TestParallelTruncationIsDeterministic, with a canonicalizer installed.
func TestQuotientTruncationIsDeterministic(t *testing.T) {
	wq := flp.NewWaitQuorum(3)
	canon, err := flp.PermutationCanon(wq)
	if err != nil {
		t.Fatalf("PermutationCanon: %v", err)
	}
	sys := flp.NewSystem(wq, nil, 1)
	ref, err := core.Explore[string](sys, core.ExploreOptions{Parallelism: 1, MaxStates: 300, Canon: canon})
	if !errors.Is(err, core.ErrStateLimit) {
		t.Fatalf("sequential: err = %v, want ErrStateLimit", err)
	}
	if ref.Len() != 301 {
		t.Fatalf("sequential partial quotient has %d states, want 301", ref.Len())
	}
	for _, par := range []int{2, 8} {
		g, err := core.Explore[string](sys, core.ExploreOptions{Parallelism: par, MaxStates: 300, Canon: canon})
		if !errors.Is(err, core.ErrStateLimit) {
			t.Fatalf("par=%d: err = %v, want ErrStateLimit", par, err)
		}
		requireIdenticalGraphs(t, fmt.Sprintf("truncated quotient par=%d", par), ref, g)
	}
}

// TestQuotientAgreesWithFullGraph checks verdict preservation for the
// symmetric predicates each family actually cares about: the mutex
// exclusion invariant and fair-cycle existence for the shared-memory locks,
// and election safety for the crash-free async systems.
func TestQuotientAgreesWithFullGraph(t *testing.T) {
	for _, alg := range []sharedmem.Algorithm{sharedmem.NewPeterson2(), sharedmem.NewTicketLock(3)} {
		t.Run(alg.Name(), func(t *testing.T) {
			full, err := sharedmem.Explore(alg, 0)
			if err != nil {
				t.Fatalf("full explore: %v", err)
			}
			quo, err := sharedmem.ExploreWith(alg, core.ExploreOptions{Canon: sharedmem.CanonFor(alg), VerifyCanon: 1})
			if err != nil {
				t.Fatalf("quotient explore: %v", err)
			}
			// Exclusion is orbit-invariant; CheckMutex reports it via the
			// full graph, so recheck both sides agree here.
			excl := func(g *core.Graph[string]) bool {
				_, _, ok := g.CheckInvariant(func(s string) bool {
					crit := 0
					for p := 0; p < alg.NumProcs(); p++ {
						if alg.Region(p, int(s[p])) == spec.Critical {
							crit++
						}
					}
					return crit <= 1
				})
				return ok
			}
			if fe, qe := excl(full), excl(quo); fe != qe {
				t.Fatalf("exclusion verdict differs: full %v, quotient %v", fe, qe)
			}
			// Fair-cycle existence (the skeleton of every lockout argument)
			// must survive quotienting: symmetry maps fair cycles to fair
			// cycles.
			n := alg.NumProcs()
			_, fullLasso := full.FairLassoWithin(func(int) bool { return true }, core.WeakFairness, n)
			_, quoLasso := quo.FairLassoWithin(func(int) bool { return true }, core.WeakFairness, n)
			if fullLasso != quoLasso {
				t.Fatalf("fair-lasso existence differs: full %v, quotient %v", fullLasso, quoLasso)
			}
		})
	}
}

// TestWaitQuorum4QuotientAcceptance is the PR's headline perf criterion:
// on the FLP wait-quorum protocol at n=4 the process-permutation quotient
// must explore at least 2x fewer states while every analysis verdict —
// bivalence, agreement, validity, deadlock, fair lasso, decider, liveness —
// is unchanged. (Measured reduction is ~22x; 2x is the floor.)
func TestWaitQuorum4QuotientAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("wait-quorum n=4 explores 563k states; skipped in -short")
	}
	p := flp.NewWaitQuorum(4)
	canon, err := flp.PermutationCanon(p)
	if err != nil {
		t.Fatalf("PermutationCanon: %v", err)
	}
	full, err := flp.Analyze(p, flp.AnalyzeOptions{})
	if err != nil {
		t.Fatalf("full Analyze: %v", err)
	}
	quo, err := flp.Analyze(p, flp.AnalyzeOptions{Canon: canon})
	if err != nil {
		t.Fatalf("quotient Analyze: %v", err)
	}
	if quo.States*2 > full.States {
		t.Fatalf("quotient explored %d states vs full %d: reduction below 2x", quo.States, full.States)
	}
	type verdicts struct {
		bivalentInitial, agreement, validity, deadlock, lasso, decider, lively bool
	}
	vOf := func(r flp.Report) verdicts {
		return verdicts{
			bivalentInitial: r.HasBivalentInitial,
			agreement:       r.AgreementViolated,
			validity:        r.ValidityViolated,
			deadlock:        r.HasDeadlock,
			lasso:           r.NondecidingLasso != nil,
			decider:         r.DeciderFound,
			lively:          r.Lively,
		}
	}
	if vOf(full) != vOf(quo) {
		t.Fatalf("verdicts differ at n=4:\nfull     %+v\nquotient %+v", vOf(full), vOf(quo))
	}
}

// TestAsyncLCRElectionAllSchedules anchors the ringbench exploration
// workload at the root level: at n=6, every one of the n! delivery
// schedules elects the maximum id.
func TestAsyncLCRElectionAllSchedules(t *testing.T) {
	a, err := ring.NewAsyncLCR(ring.DescendingIDs(6))
	if err != nil {
		t.Fatal(err)
	}
	g, err := a.CheckElection(core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("empty exploration")
	}
}
