#!/bin/sh
# coverage_floor.sh — the per-package coverage gate CI runs.
#
# Packages listed as `enforce` in scripts/coverage_baseline.txt (those
# already at or above the 80% floor when the baseline was recorded) FAIL
# the build if they fall under the floor; everything else is warn-only.
# Every package prints its delta against the recorded baseline so drift
# is visible before it becomes a failure. Run from anywhere in the repo.
set -eu
cd "$(dirname "$0")/.."
baseline=scripts/coverage_baseline.txt

go test -cover ./... 2>/dev/null | awk -v base="$baseline" '
BEGIN {
    floor = 80.0
    while ((getline line < base) > 0) {
        n = split(line, f, " ")
        if (n < 3 || f[1] ~ /^#/) continue
        basepct[f[1]] = f[2] + 0
        mode[f[1]] = f[3]
    }
    close(base)
}
/coverage:/ {
    pkg = ($1 == "ok" || $1 == "FAIL") ? $2 : $1
    pct = -1
    for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1) + 0
    if (pct < 0) next
    delta = (pkg in basepct) \
        ? sprintf("  (baseline %5.1f%%, delta %+.1f)", basepct[pkg], pct - basepct[pkg]) \
        : "  (new package, no baseline)"
    if (mode[pkg] == "enforce" && pct < floor) {
        printf "FAIL  %-28s %5.1f%% fell under the enforced %.0f%% floor%s\n", pkg, pct, floor, delta
        failed = 1
    } else if (pct < floor) {
        printf "WARN  %-28s %5.1f%% under the %.0f%% floor (warn-only)%s\n", pkg, pct, floor, delta
    } else {
        printf "ok    %-28s %5.1f%%%s\n", pkg, pct, delta
    }
}
END {
    if (failed) {
        print "coverage floor violated: backfill tests or (with justification) demote the package in " base
        exit 1
    }
    print "coverage floor clean"
}'
