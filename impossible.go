// Package impossible is the public facade of the library: a unified,
// executable reproduction of the results surveyed in Nancy Lynch's
// "A Hundred Impossibility Proofs for Distributed Computing" (PODC 1989).
//
// The survey's thesis is that every impossibility proof in distributed
// computing rests on the limitation of local knowledge — "if a process
// sees the same thing in two executions, it behaves the same in both" —
// refined into a handful of techniques. This library mechanizes each
// technique as an engine operating over a shared formal model, and pairs
// each with the classic algorithm that matches its bound:
//
//   - pigeonhole / exhaustion (§2.1): CheckMutex verifies mutual exclusion
//     algorithms; SearchTASMutex and SearchRWMutex prove the small
//     impossibility results by enumerating every protocol table.
//   - scenario arguments (§2.2.1): SpliceCheck defeats any n = 3t
//     Byzantine agreement protocol; CutReplayCheck defeats any protocol on
//     a low-connectivity network.
//   - chain arguments (§2.2.2): ChainLowerBound proves the t+1 round
//     bound for crash consensus; TwoGeneralsChainCheck walks the [61]
//     chain; EIG and FloodSet are the matching algorithms.
//   - bivalence arguments (§2.2.4, §2.3): AnalyzeFLP dissects asynchronous
//     consensus protocols; SearchConsensus separates the consensus numbers
//     of registers and test-and-set objects; MeasureBenOr shows the
//     randomized escape hatch.
//   - stretching arguments (§2.2.6): the clocks functions measure the
//     ε(1−1/n) synchronization bound and verify shift
//     indistinguishability; the sessions functions exhibit the
//     synchronous/asynchronous time gap.
//   - symmetry arguments (§2.4): CheckAnonymousSymmetry executes Angluin's
//     argument; RunLCR / RunHS / RunVariableSpeeds map the ring election
//     message-complexity landscape; RunItaiRodeh is the randomized escape.
//
// Each identifier below is a thin alias into the corresponding internal
// package; see those packages for the full APIs.
package impossible

import (
	"math/rand"

	"repro/internal/async"
	"repro/internal/clocks"
	"repro/internal/consensus"
	"repro/internal/datalink"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/knowledge"
	"repro/internal/obs"
	"repro/internal/registers"
	"repro/internal/ring"
	"repro/internal/rounds"
	"repro/internal/scenario"
	"repro/internal/sessions"
	"repro/internal/sharedmem"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/synth"
)

// Parallel state-space exploration (the substrate under every checker).
type (
	// EngineStats is the exploration telemetry sink accepted by the
	// checkers' options types (states/sec, frontier depth, dedup rate,
	// per-worker step counts). A non-nil sink routes exploration through
	// the parallel engine; the resulting graph is identical at any worker
	// count.
	EngineStats = engine.Stats

	// ObsSink receives streaming exploration telemetry (run boundaries,
	// per-level barrier events, timer snapshots). Observation is passive:
	// attaching a sink cannot change the explored graph. Accepted by the
	// checkers' options types alongside EngineStats.
	ObsSink = obs.Sink
	// ObsEvent is one telemetry event delivered to an ObsSink.
	ObsEvent = obs.Event
	// ObsSnapshot is a point-in-time progress snapshot (states/sec,
	// frontier depth, per-worker utilization, ETA against the state cap).
	ObsSnapshot = obs.ProgressSnapshot
	// ObsMultiSink fans one event stream out to several sinks.
	ObsMultiSink = obs.MultiSink
	// TraceWriter streams events as a versioned JSONL run trace.
	TraceWriter = obs.TraceWriter
	// TraceManifest is the trace's first line (schema version, tool,
	// seed, options, VCS revision).
	TraceManifest = obs.Manifest
	// TraceSummary is ValidateTrace's per-trace report.
	TraceSummary = obs.TraceSummary
)

// Streaming telemetry constructors (see internal/obs).
var (
	// NewTraceWriter opens a JSONL run-trace stream over w.
	NewTraceWriter = obs.NewTraceWriter
	// NewTraceManifest builds a manifest stamped with the tool name,
	// schema version and VCS revision.
	NewTraceManifest = obs.NewManifest
	// NewProgressLogger returns a sink that renders events as human
	// log lines with windowed rates.
	NewProgressLogger = obs.NewLogger
	// ValidateTrace schema-checks a JSONL run trace and recomputes its
	// deterministic digest (the `hundred trace-lint` engine).
	ValidateTrace = obs.ValidateTrace
)

// Shared-memory resource allocation (§2.1).
type (
	// MutexAlgorithm is a shared-memory protocol checkable by CheckMutex.
	MutexAlgorithm = sharedmem.Algorithm
	// MutexReport is the verdict of CheckMutex.
	MutexReport = sharedmem.MutexReport
	// MutexOptions configures CheckMutex.
	MutexOptions = sharedmem.CheckMutexOptions
	// SynthResult summarizes an exhaustive protocol search.
	SynthResult = synth.Result
)

// Mutual exclusion algorithms of §2.1.
var (
	NewTASLock           = sharedmem.NewTASLock
	NewPeterson2         = sharedmem.NewPeterson2
	NewDijkstra          = sharedmem.NewDijkstra
	NewTicketLock        = sharedmem.NewTicketLock
	NewCountingSemaphore = sharedmem.NewCountingSemaphore
	NewHandoffLock       = sharedmem.NewHandoffLock
)

// CheckMutex model-checks the §2.1 correctness conditions.
func CheckMutex(alg MutexAlgorithm, opts MutexOptions) (MutexReport, error) {
	return sharedmem.CheckMutex(alg, opts)
}

// CheckBoundedBypass verifies the bounded-waiting condition.
func CheckBoundedBypass(alg MutexAlgorithm, bound, maxStates int) (bool, error) {
	ok, _, err := sharedmem.CheckBoundedBypass(alg, bound, maxStates)
	return ok, err
}

// SearchTASMutex exhaustively searches single-test-and-set-variable mutex
// protocols (the mechanized Cremers–Hibbard result).
func SearchTASMutex(cfg synth.TASSearchConfig) (SynthResult, error) {
	return synth.SearchTASMutex(cfg)
}

// SearchRWMutex exhaustively searches single-RW-register mutex protocols
// (the mechanized Burns–Lynch result).
func SearchRWMutex(cfg synth.RWSearchConfig) (SynthResult, error) {
	return synth.SearchRWMutex(cfg)
}

// Synchronous consensus (§2.2).
type (
	// RoundProtocol is a synchronous-round protocol.
	RoundProtocol = rounds.Protocol
	// ChainResult reports a round-lower-bound chain search.
	ChainResult = consensus.ChainResult
	// SpliceVerdict reports a Fischer–Lynch–Merritt splice check.
	SpliceVerdict = scenario.Verdict
)

// ChainLowerBound mechanizes the t+1 round lower bound for crash
// consensus on n processes at k rounds.
func ChainLowerBound(n, t, k int) (ChainResult, error) {
	return consensus.ChainLowerBound(n, t, k)
}

// VerifyFloodSet exhaustively verifies FloodSet at t+1 rounds.
func VerifyFloodSet(n, t int) (int, error) {
	return consensus.VerifyFloodSetExhaustively(n, t)
}

// NewEIG returns the exponential information gathering protocol.
func NewEIG(n, t int) *consensus.EIG { return &consensus.EIG{Procs: n, MaxFaults: t} }

// NewFloodSet returns the crash-tolerant flooding protocol.
func NewFloodSet(n, t int) *consensus.FloodSet {
	return &consensus.FloodSet{Procs: n, MaxFaults: t}
}

// SpliceCheck runs the n = 3t scenario argument against a concrete
// protocol.
func SpliceCheck(base RoundProtocol, t, numRounds int) (SpliceVerdict, error) {
	return scenario.SpliceCheck(base, t, numRounds)
}

// CutReplayCheck runs the low-connectivity split-brain argument.
func CutReplayCheck(base RoundProtocol, net *rounds.Graph, cut []int, numRounds int) (scenario.CutVerdict, error) {
	return scenario.CutReplayCheck(base, net, cut, numRounds)
}

// Asynchronous consensus and FLP (§2.2.4).
type (
	// FLPProtocol is an asynchronous protocol for bivalence analysis.
	FLPProtocol = flp.Protocol
	// FLPReport is the bivalence analyzer's verdict.
	FLPReport = flp.Report
	// FLPAnalyzeOptions parameterizes AnalyzeFLP (parallelism, telemetry,
	// symmetry quotient via Canon/VerifyCanon, partial-order reduction via
	// Independent/Visible/VerifyPOR).
	FLPAnalyzeOptions = flp.AnalyzeOptions
)

// FLPPermutationCanon builds the process-permutation canonicalizer for a
// ProcessSymmetric protocol, for use as FLPAnalyzeOptions.Canon.
var FLPPermutationCanon = flp.PermutationCanon

// Visited-set store backends (FLPAnalyzeOptions.Store / MutexOptions.Store):
// the knob that decides how large an instance the exhaustive checkers can
// certify. StoreMem is the RAM default; StoreSpill bounds resident payload
// bytes by spilling to compressed segment files (graphs stay byte-identical
// to mem); StoreBitstate is a fingerprint-only lossy sweep that taints
// verdicts (Report.Lossy) — absence of a violation is then not evidence.
type (
	// StoreConfig selects and budgets a visited-set backend.
	StoreConfig = store.Config
	// StoreKind names a backend: StoreMem, StoreSpill or StoreBitstate.
	StoreKind = store.Kind
)

const (
	StoreMem      = store.Mem
	StoreSpill    = store.Spill
	StoreBitstate = store.Bitstate
)

// FLPDeliveryIndependence and FLPDecisionVisibility build the ample-set
// independence relation and decision-visibility predicate for a protocol's
// crash-free state space, for use as FLPAnalyzeOptions.Independent/Visible.
// Resilience >= 1 spaces are POR-irreducible (the relation is sound but
// saves nothing); see internal/flp/por.go for the contract.
var (
	FLPDeliveryIndependence = flp.DeliveryIndependence
	FLPDecisionVisibility   = flp.DecisionVisibility
)

// AnalyzeFLP runs the bivalence analysis on an asynchronous protocol.
func AnalyzeFLP(p FLPProtocol, opts flp.AnalyzeOptions) (FLPReport, error) {
	return flp.Analyze(p, opts)
}

// FLP demonstration protocols.
var (
	NewWaitAll    = flp.NewWaitAll
	NewWaitQuorum = flp.NewWaitQuorum
	NewAdoptSwap  = flp.NewAdoptSwap
)

// MeasureBenOr runs seeded executions of Ben-Or randomized consensus.
func MeasureBenOr(n, t, runs int, inputs []int, crashAfter map[int]int, seed int64) (async.BenOrReport, error) {
	return async.MeasureBenOr(n, t, runs, inputs, crashAfter, seed)
}

// Ring computations (§2.4).
type (
	// ElectionResult reports a ring election.
	ElectionResult = ring.ElectionResult
)

// Ring election algorithms and id arrangements.
var (
	RunLCR            = ring.RunLCR
	RunHS             = ring.RunHS
	RunVariableSpeeds = ring.RunVariableSpeeds
	DescendingIDs     = ring.DescendingIDs
	AscendingIDs      = ring.AscendingIDs
	BitReversalIDs    = ring.BitReversalIDs
)

// CheckAnonymousSymmetry executes Angluin's symmetry argument against an
// anonymous protocol.
func CheckAnonymousSymmetry(p ring.AnonymousProtocol, n, input, maxRounds int) (ring.SymmetryReport, error) {
	return ring.CheckAnonymousSymmetry(p, n, input, maxRounds)
}

// RunItaiRodeh runs randomized anonymous leader election.
func RunItaiRodeh(n, space int, rng *rand.Rand, maxPhases int) (ring.ItaiRodehResult, error) {
	return ring.RunItaiRodeh(n, space, rng, maxPhases)
}

// Clock synchronization (§2.2.6).
type (
	// ClockNetwork is the delay model for clock synchronization.
	ClockNetwork = clocks.Network
	// ClockExecution is one offsets-and-delays assignment.
	ClockExecution = clocks.Execution
)

// Clock synchronization entry points.
var (
	ClockAdjusted        = clocks.AdjustedClocks
	ClockMaxSkew         = clocks.MaxSkew
	ClockBound           = clocks.TheoreticalBound
	ClockWorstCase       = clocks.WorstCaseExecution
	ClockUniform         = clocks.UniformExecution
	ClockShift           = clocks.ShiftExecution
	ClockIndistinguished = clocks.CheckIndistinguishable
)

// Sessions (§2.2.6).
var (
	RunSessionsSynchronous = sessions.RunSynchronous
	RunSessionsToken       = sessions.RunTokenBarrier
	SessionsLowerBound     = sessions.LowerBound
	CountSessions          = sessions.CountSessions
)

// Data link (§2.5).
var (
	RunABP                  = datalink.RunABP
	TwoGeneralsChainCheck   = datalink.ChainCheck
	NewTwoGeneralsHandshake = func(depth int) datalink.GeneralProtocol { return &datalink.Handshake{Depth: depth} }
)

// Registers and wait-free synchronization (§2.3).
var (
	IsAtomicHistory  = registers.IsAtomic
	IsRegularHistory = registers.IsRegular
	IsSafeHistory    = registers.IsSafe
	SearchConsensus  = registers.SearchConsensus
)

// Problem statements (§3.3).
var (
	CheckConsensusConditions = spec.CheckConsensus
	CheckCrashConsensus      = spec.CheckCrashConsensus
	CheckCommitRule          = spec.CheckCommitRule
	BinaryConsensusTask      = spec.BinaryConsensusTask
)

// Extended algorithms and engines added alongside the core experiment set.
var (
	// NewTournament4 is the 4-process tournament mutex (§2.1 composition).
	NewTournament4 = sharedmem.NewTournament4
	// NewPhaseKing returns the constant-message-size Byzantine agreement
	// protocol (n > 4t).
	NewPhaseKing = func(n, t int) *consensus.PhaseKing {
		return &consensus.PhaseKing{Procs: n, MaxFaults: t}
	}
	// NewThreePhaseCommit returns the non-blocking commit protocol.
	NewThreePhaseCommit = func(n int) *consensus.ThreePhaseCommit {
		return &consensus.ThreePhaseCommit{Procs: n}
	}
	// CompareMessageSizes contrasts EIG and phase-king communication.
	CompareMessageSizes = consensus.CompareMessageSizes
	// RunPetersonRing is Peterson's O(n log n) unidirectional election.
	RunPetersonRing = ring.RunPetersonUnidirectional
	// RunSeqNo is the unbounded-header data link protocol.
	RunSeqNo = datalink.RunSeqNo
	// StretchClocks scales delays by sigma and rates by 1/sigma — the
	// §2.2.6 indistinguishable stretching.
	StretchClocks = clocks.StretchExecution
	// CheckStretchIndistinguishable verifies stretched executions match.
	CheckStretchIndistinguishable = clocks.CheckRatedIndistinguishable
)

// Clock synchronization algorithm types.
type (
	// ClockAlgorithm computes clock corrections from observations.
	ClockAlgorithm = clocks.Algorithm
	// Observation is a hardware receive-time observation.
	Observation = clocks.Observation
)

// LundeliusLynchAlgo is the averaging synchronization algorithm of [77].
type LundeliusLynchAlgo = clocks.LundeliusLynch

// Knowledge formalization (§2.6, Halpern–Moses / Dwork–Moses).
type (
	// KnowledgeUniverse is the set of all k-round crash executions with
	// the indistinguishability structure precomputed.
	KnowledgeUniverse = knowledge.Universe
	// KnowledgeFact is a property of executions.
	KnowledgeFact = knowledge.Fact
)

// NewCrashUniverse enumerates the k-round crash universe for knowledge
// analyses.
var NewCrashUniverse = knowledge.NewCrashUniverse
