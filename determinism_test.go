package impossible

// Determinism contract of the parallel exploration engine, checked over
// real seed systems from three different modeling families: a shared-memory
// mutex (Peterson), an asynchronous message-passing consensus protocol
// (FLP wait-quorum), and a synchronous lockstep rounds system with crash
// nondeterminism defined locally below. Whatever the worker count, the
// explored graph must be byte-identical to the sequential explorer's —
// state numbering, initials, edge lists, parent tree, everything — because
// every downstream impossibility engine (valence, chains, lassos) keys off
// those ids.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/sharedmem"
)

// lockstepState is a synchronous-rounds configuration: the round counter,
// the crash pattern, and an accumulated observation that makes distinct
// histories reach distinct states until they genuinely reconverge.
type lockstepState struct {
	round   int
	crashed [3]bool
	sum     int
}

// lockstepSys is a 3-process lockstep system: in each round the adversary
// may crash any live process, then the round advances and every live
// process contributes to the shared sum. It exercises the engine's
// struct-state fingerprint fallback and heavy diamond reconvergence.
type lockstepSys struct{ rounds int }

func (l lockstepSys) Init() []lockstepState { return []lockstepState{{}} }

func (l lockstepSys) Steps(s lockstepState) []core.Step[lockstepState] {
	if s.round >= l.rounds {
		return nil
	}
	var out []core.Step[lockstepState]
	for p := 0; p < 3; p++ {
		if s.crashed[p] {
			continue
		}
		ns := s
		ns.crashed[p] = true
		out = append(out, core.Step[lockstepState]{To: ns, Label: "crash", Actor: p})
	}
	adv := s
	adv.round++
	for p := 0; p < 3; p++ {
		if !s.crashed[p] {
			adv.sum += (p + 1) * (s.round + 1)
		}
	}
	out = append(out, core.Step[lockstepState]{To: adv, Label: "tick", Actor: core.EnvironmentActor})
	return out
}

// requireIdenticalGraphs fails unless got is state-for-state, edge-for-edge
// identical to ref.
func requireIdenticalGraphs[S comparable](t *testing.T, label string, ref, got *core.Graph[S]) {
	t.Helper()
	if got.Len() != ref.Len() {
		t.Fatalf("%s: %d states, want %d", label, got.Len(), ref.Len())
	}
	ri, gi := ref.Initials(), got.Initials()
	if len(ri) != len(gi) {
		t.Fatalf("%s: %d initials, want %d", label, len(gi), len(ri))
	}
	for k := range ri {
		if ri[k] != gi[k] {
			t.Fatalf("%s: initial %d is state %d, want %d", label, k, gi[k], ri[k])
		}
	}
	for i := 0; i < ref.Len(); i++ {
		if got.State(i) != ref.State(i) {
			t.Fatalf("%s: state %d differs", label, i)
		}
		if got.Parent(i) != ref.Parent(i) {
			t.Fatalf("%s: parent of %d = %d, want %d", label, i, got.Parent(i), ref.Parent(i))
		}
		if got.ParentStep(i) != ref.ParentStep(i) {
			t.Fatalf("%s: parent step of %d differs", label, i)
		}
		rs, gs := ref.Successors(i), got.Successors(i)
		if len(rs) != len(gs) {
			t.Fatalf("%s: state %d has %d successors, want %d", label, i, len(gs), len(rs))
		}
		for k := range rs {
			if rs[k] != gs[k] {
				t.Fatalf("%s: successor %d of state %d differs: %+v vs %+v", label, k, i, gs[k], rs[k])
			}
		}
	}
}

// checkDeterminism explores sys sequentially, then at several worker
// counts (including the engine path at one worker, forced via a Stats
// sink), and requires identical graphs throughout.
func checkDeterminism[S comparable](t *testing.T, name string, sys core.System[S]) {
	t.Helper()
	ref, err := core.Explore[S](sys, core.ExploreOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("%s: sequential exploration: %v", name, err)
	}
	for _, par := range []int{1, 2, 8} {
		var st engine.Stats
		g, err := core.Explore[S](sys, core.ExploreOptions{Parallelism: par, Stats: &st})
		if err != nil {
			t.Fatalf("%s: parallelism %d: %v", name, par, err)
		}
		requireIdenticalGraphs(t, fmt.Sprintf("%s par=%d", name, par), ref, g)
		if st.States != ref.Len() {
			t.Fatalf("%s par=%d: stats report %d states, graph has %d", name, par, st.States, ref.Len())
		}
	}
}

func TestParallelExplorationIsDeterministic(t *testing.T) {
	t.Run("peterson2", func(t *testing.T) {
		checkDeterminism(t, "peterson2", sharedmem.NewSystem(sharedmem.NewPeterson2()))
	})
	t.Run("ticket-lock", func(t *testing.T) {
		checkDeterminism(t, "ticket-lock", sharedmem.NewSystem(sharedmem.NewTicketLock(3)))
	})
	t.Run("flp-wait-quorum", func(t *testing.T) {
		checkDeterminism(t, "flp-wait-quorum", flp.NewSystem(flp.NewWaitQuorum(3), nil, 1))
	})
	t.Run("lockstep-rounds", func(t *testing.T) {
		checkDeterminism(t, "lockstep-rounds", lockstepSys{rounds: 8})
	})
}

// TestParallelTruncationIsDeterministic pins the truncation contract at the
// API surface: hitting MaxStates returns the canonical partial graph and
// the shared ErrStateLimit, identically at every worker count.
func TestParallelTruncationIsDeterministic(t *testing.T) {
	sys := flp.NewSystem(flp.NewWaitQuorum(3), nil, 1)
	ref, err := core.Explore[string](sys, core.ExploreOptions{Parallelism: 1, MaxStates: 700})
	if !errors.Is(err, core.ErrStateLimit) {
		t.Fatalf("sequential: err = %v, want ErrStateLimit", err)
	}
	if ref.Len() != 701 {
		t.Fatalf("sequential partial graph has %d states, want 701", ref.Len())
	}
	for _, par := range []int{2, 8} {
		g, err := core.Explore[string](sys, core.ExploreOptions{Parallelism: par, MaxStates: 700})
		if !errors.Is(err, core.ErrStateLimit) {
			t.Fatalf("par=%d: err = %v, want ErrStateLimit", par, err)
		}
		requireIdenticalGraphs(t, fmt.Sprintf("truncated par=%d", par), ref, g)
	}
}
