package impossible

// Cross-cutting properties of partial-order-reduced exploration
// (ExploreOptions.Independent): the reduced graph must be deterministic at
// any worker count exactly like the full graph, every analysis verdict must
// agree between the full interleaving space and its ample-set reduction for
// the seed systems that carry independence relations, the reduction must
// actually pay (the PR's headline perf criteria), and the VerifyPOR
// falsifier must catch an unsound relation end to end.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datalink"
	"repro/internal/engine"
	"repro/internal/flp"
	"repro/internal/ring"
)

// flpVerdicts collects every analyzer verdict POR must preserve.
type flpVerdicts struct {
	bivalentInitial, agreement, validity, deadlock, lasso, lively bool
}

func flpVerdictsOf(r flp.Report) flpVerdicts {
	return flpVerdicts{
		bivalentInitial: r.HasBivalentInitial,
		agreement:       r.AgreementViolated,
		validity:        r.ValidityViolated,
		deadlock:        r.HasDeadlock,
		lasso:           r.NondecidingLasso != nil,
		lively:          r.Lively,
	}
}

// porAnalyze runs flp.Analyze with the protocol's independence relation and
// visibility predicate installed, checking the diamond contract on every
// sampled state.
func porAnalyze(p flp.Protocol, opts flp.AnalyzeOptions) (flp.Report, error) {
	opts.Independent = flp.DeliveryIndependence(p)
	opts.Visible = flp.DecisionVisibility(p)
	if opts.VerifyPOR == 0 {
		opts.VerifyPOR = 1
	}
	return flp.Analyze(p, opts)
}

// TestPORAgreesWithFullAnalysis checks verdict preservation for every FLP
// seed protocol at n=3, at both resilience settings, with the falsifier
// checking every state (VerifyPOR=1). At resilience 1 the reduction is
// provably vacuous (see DeliveryIndependence's resilience note) but the
// machinery still runs and must still agree.
func TestPORAgreesWithFullAnalysis(t *testing.T) {
	for _, mk := range []func(int) flp.Protocol{flp.NewWaitAll, flp.NewWaitQuorum, flp.NewAdoptSwap} {
		for res := 0; res <= 1; res++ {
			res := res
			p := mk(3)
			t.Run(fmt.Sprintf("%s-r%d", p.Name(), res), func(t *testing.T) {
				full, err := flp.Analyze(p, flp.AnalyzeOptions{Resilience: &res})
				if err != nil {
					t.Fatalf("full Analyze: %v", err)
				}
				red, err := porAnalyze(p, flp.AnalyzeOptions{Resilience: &res})
				if err != nil {
					t.Fatalf("POR Analyze: %v", err)
				}
				if flpVerdictsOf(full) != flpVerdictsOf(red) {
					t.Fatalf("verdicts differ:\nfull %+v\npor  %+v", flpVerdictsOf(full), flpVerdictsOf(red))
				}
				if res == 1 && red.States != full.States {
					// The documented negative result: crash nondeterminism
					// makes the space POR-irreducible, exactly.
					t.Fatalf("resilience-1 space reduced %d -> %d states; expected exact irreducibility", full.States, red.States)
				}
				if res == 0 && red.States >= full.States {
					t.Fatalf("crash-free space not reduced: full %d, por %d", full.States, red.States)
				}
			})
		}
	}
}

// TestPORExplorationIsDeterministic extends the engine's determinism
// contract to reduced runs: at 1, 2, and 8 workers the reduced graph must
// be byte-identical — state numbering, parent tree, edge lists — for a
// leveled DAG (FLP), a cyclic space where the C3 proviso fires (async ABP),
// and the ring election space.
func TestPORExplorationIsDeterministic(t *testing.T) {
	abp, err := datalink.NewAsyncABP(3)
	if err != nil {
		t.Fatal(err)
	}
	lcr, err := ring.NewAsyncLCR(ring.DescendingIDs(5))
	if err != nil {
		t.Fatal(err)
	}
	wq := flp.NewWaitQuorum(3)
	cases := []struct {
		name        string
		sys         core.System[string]
		independent any
		visible     any
	}{
		{"flp-wait-quorum", flp.NewSystem(wq, nil, 0), flp.DeliveryIndependence(wq), flp.DecisionVisibility(wq)},
		{"async-abp", abp.System(), abp.Independence(), abp.ProgressVisibility()},
		{"async-lcr", lcr.System(), lcr.Independence(), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref, err := core.Explore[string](c.sys, core.ExploreOptions{
				Parallelism: 1, Independent: c.independent, Visible: c.visible,
			})
			if err != nil {
				t.Fatalf("reference reduced exploration: %v", err)
			}
			for _, par := range []int{1, 2, 8} {
				var st engine.Stats
				g, err := core.Explore[string](c.sys, core.ExploreOptions{
					Parallelism: par, Stats: &st,
					Independent: c.independent, Visible: c.visible, VerifyPOR: 2,
				})
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				requireIdenticalGraphs(t, fmt.Sprintf("%s por par=%d", c.name, par), ref, g)
				if !st.POREnabled {
					t.Fatalf("par=%d: stats do not report POR enabled", par)
				}
			}
		})
	}
}

// TestWaitQuorum4PORAcceptance is the PR's headline perf criterion: on the
// crash-free FLP wait-quorum space at n=4, ample-set reduction alone must
// explore at least 3x fewer states with every analysis verdict unchanged,
// and stacking it on the symmetry quotient must beat the quotient alone.
// (Measured: full 112,688 / POR ~9.2k (~12x); quotient 5,257 / POR+quotient
// ~932 — against the resilience-1 quotient baseline of 25,035 states.)
func TestWaitQuorum4PORAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("wait-quorum n=4 explores 112k states; skipped in -short")
	}
	res := 0
	p := flp.NewWaitQuorum(4)
	full, err := flp.Analyze(p, flp.AnalyzeOptions{Resilience: &res})
	if err != nil {
		t.Fatalf("full Analyze: %v", err)
	}
	red, err := porAnalyze(p, flp.AnalyzeOptions{Resilience: &res, VerifyPOR: 16})
	if err != nil {
		t.Fatalf("POR Analyze: %v", err)
	}
	if red.States*3 > full.States {
		t.Fatalf("POR explored %d states vs full %d: reduction below 3x", red.States, full.States)
	}
	if flpVerdictsOf(full) != flpVerdictsOf(red) {
		t.Fatalf("verdicts differ at n=4:\nfull %+v\npor  %+v", flpVerdictsOf(full), flpVerdictsOf(red))
	}
	canon, err := flp.PermutationCanon(p)
	if err != nil {
		t.Fatalf("PermutationCanon: %v", err)
	}
	quo, err := flp.Analyze(p, flp.AnalyzeOptions{Resilience: &res, Canon: canon})
	if err != nil {
		t.Fatalf("quotient Analyze: %v", err)
	}
	both, err := porAnalyze(p, flp.AnalyzeOptions{Resilience: &res, Canon: canon, VerifyPOR: 16})
	if err != nil {
		t.Fatalf("POR+quotient Analyze: %v", err)
	}
	if both.States >= quo.States {
		t.Fatalf("POR+quotient explored %d states, quotient alone %d: stacking did not pay", both.States, quo.States)
	}
	if flpVerdictsOf(full) != flpVerdictsOf(both) {
		t.Fatalf("verdicts differ under POR+quotient:\nfull %+v\nboth %+v", flpVerdictsOf(full), flpVerdictsOf(both))
	}
}

// TestAsyncLCRPORAcceptance is the second headline criterion: the ring
// election space at n=6 must reduce at least 3x while CheckElection still
// proves that exactly the maximum id wins and that some schedule elects it.
func TestAsyncLCRPORAcceptance(t *testing.T) {
	a, err := ring.NewAsyncLCR(ring.DescendingIDs(6))
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.CheckElection(core.ExploreOptions{})
	if err != nil {
		t.Fatalf("full CheckElection: %v", err)
	}
	red, err := a.CheckElection(core.ExploreOptions{Independent: a.Independence(), VerifyPOR: 1})
	if err != nil {
		t.Fatalf("reduced CheckElection: %v", err)
	}
	if red.Len()*3 > full.Len() {
		t.Fatalf("POR explored %d states vs full %d: reduction below 3x", red.Len(), full.Len())
	}
}

// TestAsyncABPDeliveryUnderPOR checks the datalink space: the delivery
// properties hold over every schedule, with and without reduction, and the
// reduced cyclic graph stays sound (the C3 proviso keeps retransmission
// loops from starving the deferred channel direction; VerifyPOR checks the
// diamond at every state).
func TestAsyncABPDeliveryUnderPOR(t *testing.T) {
	a, err := datalink.NewAsyncABP(4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.CheckDelivery(core.ExploreOptions{})
	if err != nil {
		t.Fatalf("full CheckDelivery: %v", err)
	}
	var st engine.Stats
	red, err := a.CheckDelivery(core.ExploreOptions{
		Stats: &st, Independent: a.Independence(), Visible: a.ProgressVisibility(), VerifyPOR: 1,
	})
	if err != nil {
		t.Fatalf("reduced CheckDelivery: %v", err)
	}
	if red.Len() > full.Len() {
		t.Fatalf("reduced graph has %d states, full %d", red.Len(), full.Len())
	}
	if st.AmpleStates == 0 || st.DeferredActions == 0 {
		t.Fatalf("no ample sets selected (ample=%d deferred=%d): reduction machinery idle", st.AmpleStates, st.DeferredActions)
	}
	if st.PORReductionFactor() <= 1 {
		t.Fatalf("POR branch reduction factor %.2f, want > 1", st.PORReductionFactor())
	}
}

// TestVerifyPORCatchesUnsoundRelation runs the falsifier end to end through
// the public Analyze API: a relation that blindly declares everything
// independent must fail the exploration with ErrPORUnsound rather than
// silently analyze a mutilated graph.
func TestVerifyPORCatchesUnsoundRelation(t *testing.T) {
	p := flp.NewWaitQuorum(3)
	_, err := flp.Analyze(p, flp.AnalyzeOptions{
		Independent: func(string, engine.Action[string], engine.Action[string]) bool { return true },
		VerifyPOR:   1,
	})
	if !errors.Is(err, engine.ErrPORUnsound) {
		t.Fatalf("err = %v, want ErrPORUnsound", err)
	}
}
